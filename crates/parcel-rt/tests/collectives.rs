//! Collective operations: broadcast (covered in runtime.rs), barrier, and
//! gather.

use agas::GasMode;
use parcel_rt::{barrier, gather_ranks, Runtime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Gathered (rank, payload) pairs, shared with driver callbacks.
type Gathered = Rc<RefCell<Vec<(u32, Vec<u8>)>>>;

#[test]
fn barrier_completes_on_all_sizes() {
    for n in [1usize, 2, 3, 8, 16] {
        let mut rt = Runtime::builder(n, GasMode::AgasNetwork).boot();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        barrier(&mut rt, move |_, _| f.set(true));
        rt.run();
        assert!(fired.get(), "n={n}");
    }
}

#[test]
fn gather_collects_every_rank_in_order() {
    for n in [1usize, 2, 5, 9] {
        let mut rt = Runtime::builder(n, GasMode::AgasSoftware).boot();
        let got: Gathered = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        gather_ranks(&mut rt, move |_, parts| *g.borrow_mut() = parts);
        rt.run();
        let parts = got.borrow();
        assert_eq!(parts.len(), n, "n={n}");
        for (i, (rank, bytes)) in parts.iter().enumerate() {
            assert_eq!(*rank, i as u32);
            assert_eq!(bytes, &(i as u32).to_le_bytes().to_vec());
        }
    }
}

#[test]
fn gather_lco_sorts_out_of_order_contributions() {
    let mut rt = Runtime::builder(4, GasMode::AgasNetwork).boot();
    let lco = parcel_rt::new_gather(&mut rt.eng, 0, 3);
    // Contribute from three localities in scrambled rank order.
    parcel_rt::set_gather(&mut rt.eng, 2, lco, 9, b"nine");
    parcel_rt::set_gather(&mut rt.eng, 1, lco, 3, b"three");
    parcel_rt::set_gather(&mut rt.eng, 3, lco, 5, b"five");
    let got: Gathered = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    parcel_rt::attach_driver(&mut rt.eng, lco, move |_, bytes| {
        *g.borrow_mut() = parcel_rt::decode_gather(&bytes);
    });
    rt.run();
    let parts = got.borrow();
    assert_eq!(
        &*parts,
        &[
            (3, b"three".to_vec()),
            (5, b"five".to_vec()),
            (9, b"nine".to_vec())
        ]
    );
}

#[test]
fn sequential_barriers_preserve_phases() {
    // Classic BSP check: work from phase k+1 never observes phase k
    // incomplete. We count phase completions through two barriers.
    let mut rt = Runtime::builder(6, GasMode::AgasNetwork).boot();
    let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
    let l1 = log.clone();
    let l2 = log.clone();
    barrier(&mut rt, move |eng, _| {
        l1.borrow_mut().push("phase1");
        // Start phase 2 only after phase 1's barrier fired.
        let rt_state = &mut eng.state;
        let _ = rt_state;
        l1.borrow_mut().push("phase2-start");
    });
    rt.run();
    barrier(&mut rt, move |_, _| l2.borrow_mut().push("phase2"));
    rt.run();
    assert_eq!(&*log.borrow(), &["phase1", "phase2-start", "phase2"]);
}
