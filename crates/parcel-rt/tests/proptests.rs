//! Property tests at the runtime layer: random parcel/LCO programs, LCO
//! semantics against oracles, and coalescing/transport equivalence.

use agas::{Distribution, GasMode};
use parcel_rt::{ArgWriter, ReduceOp, RingConfig, RtConfig, Runtime, Transport};
use proptest::prelude::*;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Gathered (rank, payload) pairs, shared with driver callbacks.
type Gathered = Rc<RefCell<Vec<(u32, Vec<u8>)>>>;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A reduce LCO computes the same fold as the in-memory oracle, for any
    /// operator, contribution set, and contributing localities.
    #[test]
    fn reduce_matches_oracle(
        values in proptest::collection::vec((any::<u64>(), 0u32..4), 1..24),
        op_sel in 0u8..4,
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max, ReduceOp::Xor][op_sel as usize];
        let mut rt = Runtime::builder(4, GasMode::AgasNetwork).boot();
        let red = rt.new_reduce(0, values.len() as u64, op);
        for &(v, from) in &values {
            parcel_rt::lco_set(&mut rt.eng, from, red, v.to_le_bytes().to_vec());
        }
        let got = Rc::new(Cell::new(0u64));
        let g = got.clone();
        rt.wait_lco(red, move |_, bytes| {
            g.set(u64::from_le_bytes(bytes.try_into().unwrap()));
        });
        rt.run();
        let expect = values.iter().fold(
            match op {
                ReduceOp::Sum | ReduceOp::Xor | ReduceOp::Max => 0u64,
                ReduceOp::Min => u64::MAX,
            },
            |acc, &(v, _)| match op {
                ReduceOp::Sum => acc.wrapping_add(v),
                ReduceOp::Min => acc.min(v),
                ReduceOp::Max => acc.max(v),
                ReduceOp::Xor => acc ^ v,
            },
        );
        prop_assert_eq!(got.get(), expect);
    }

    /// A gather LCO returns every contribution, ordered by rank, no matter
    /// the arrival order.
    #[test]
    fn gather_matches_oracle(
        mut entries in proptest::collection::vec((0u32..1000, proptest::collection::vec(any::<u8>(), 0..16)), 1..16),
    ) {
        // Ranks must be unique for a well-defined oracle.
        entries.sort_by_key(|&(r, _)| r);
        entries.dedup_by_key(|&mut (r, _)| r);
        let mut rt = Runtime::builder(3, GasMode::AgasSoftware).boot();
        let lco = parcel_rt::new_gather(&mut rt.eng, 0, entries.len() as u64);
        // Contribute in reverse order from varying localities.
        for (i, (rank, bytes)) in entries.iter().enumerate().rev() {
            parcel_rt::set_gather(&mut rt.eng, (i % 3) as u32, lco, *rank, bytes);
        }
        let got: Gathered = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        parcel_rt::attach_driver(&mut rt.eng, lco, move |_, bytes| {
            *g.borrow_mut() = parcel_rt::decode_gather(&bytes);
        });
        rt.run();
        prop_assert_eq!(&*got.borrow(), &entries);
    }

    /// The same random fan-out program produces identical block contents
    /// under every transport/coalescing combination.
    #[test]
    fn program_outcome_is_policy_independent(
        spawns in proptest::collection::vec((0u32..4, 0u64..8, 1u64..1000), 1..40),
        seed in 0u64..100,
    ) {
        let run = |transport: Transport, coalesce: bool| {
            let mut b = Runtime::builder(4, GasMode::AgasNetwork);
            let add = b.register("add", |eng, ctx| {
                let mut r = parcel_rt::ArgReader::new(&ctx.args);
                let v = r.u64();
                let phys = ctx.target_phys();
                eng.state.cluster.mem_mut(ctx.loc).xor_u64(phys, v).unwrap();
            });
            let mut rt = b
                .seed(seed)
                .rt_config(RtConfig {
                    transport,
                    ring: coalesce.then(RingConfig::default),
                    ..RtConfig::default()
                })
                .boot();
            let arr = rt.alloc(8, 12, Distribution::Cyclic);
            for &(from, block, v) in &spawns {
                rt.spawn(from, arr.block(block), add, ArgWriter::new().u64(v).finish(), None);
            }
            rt.run();
            rt.assert_quiescent();
            (0..8u64)
                .map(|b| {
                    let bytes = rt.read_block(arr.block(b));
                    u64::from_le_bytes(bytes[0..8].try_into().unwrap())
                })
                .collect::<Vec<u64>>()
        };
        let baseline = run(Transport::Pwc, false);
        prop_assert_eq!(run(Transport::Pwc, true), baseline.clone());
        prop_assert_eq!(run(Transport::Isir, false), baseline);
    }

    /// Random and-gate fan-ins always fire exactly once after the last set.
    #[test]
    fn and_gate_fires_exactly_once(n in 1u64..64, extra_localities in 1usize..5) {
        let mut rt = Runtime::builder(extra_localities, GasMode::AgasNetwork).boot();
        let gate = rt.new_and(0, n);
        let fires = Rc::new(Cell::new(0u32));
        let f = fires.clone();
        rt.wait_lco(gate, move |_, _| f.set(f.get() + 1));
        for i in 0..n {
            parcel_rt::lco_set(
                &mut rt.eng,
                (i % extra_localities as u64) as u32,
                gate,
                vec![],
            );
            if i + 1 < n {
                rt.run();
                prop_assert_eq!(fires.get(), 0, "fired early at {}", i);
            }
        }
        rt.run();
        prop_assert_eq!(fires.get(), 1);
    }
}
