//! Parcel batching through the shared descriptor-ring layer: small parcels
//! per destination ride one doorbell per drained batch.

use agas::{Distribution, GasMode};
use netsim::{RingConfig, Time};
use parcel_rt::{RtConfig, Runtime};
use std::cell::Cell;
use std::rc::Rc;

fn ringed(doorbell_batch: usize, doorbell_delay: Time) -> RtConfig {
    RtConfig {
        ring: Some(RingConfig {
            doorbell_batch,
            doorbell_delay,
            max_bytes: 1 << 20,
            ..RingConfig::default()
        }),
        ..RtConfig::default()
    }
}

fn spawn_burst(
    rt: &mut Runtime,
    arr: &agas::GlobalArray,
    bump: parcel_rt::ActionId,
    n: u64,
    gate: agas::Gva,
) {
    for _ in 0..n {
        rt.spawn(0, arr.block(1), bump, vec![0u8; 16], Some(gate));
    }
}

#[test]
fn ring_batching_delivers_everything() {
    let mut b = Runtime::builder(2, GasMode::AgasNetwork);
    let count = Rc::new(Cell::new(0u32));
    let c2 = count.clone();
    let bump = b.register("bump", move |eng, ctx| {
        c2.set(c2.get() + 1);
        parcel_rt::reply(eng, &ctx, vec![]);
    });
    let mut rt = b.rt_config(ringed(8, Time::from_us(5))).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    let gate = rt.new_and(0, 100);
    spawn_burst(&mut rt, &arr, bump, 100, gate);
    let fired = Rc::new(Cell::new(false));
    let f = fired.clone();
    rt.wait_lco(gate, move |_, _| f.set(true));
    rt.run();
    rt.assert_quiescent();
    assert!(fired.get());
    assert_eq!(count.get(), 100);
    // 100 parcels in batches of ≤8: at least 13 doorbells, far fewer than
    // 100 wire messages.
    let stats = rt.eng.state.total_rt_stats();
    assert!(stats.batches_sent >= 13, "{}", stats.batches_sent);
    // The shared ring layer saw those doorbells and coalesced descriptors.
    let rs = rt.eng.state.rt[0].ring_stats();
    assert!(rs.doorbells >= 13, "{rs:?}");
    assert!(rs.coalesced > 0, "{rs:?}");
}

#[test]
fn ring_batching_cuts_message_count() {
    let run = |ring: Option<RingConfig>| {
        let mut b = Runtime::builder(2, GasMode::AgasNetwork);
        let bump = b.register("bump", |_, _| {});
        let mut rt = b
            .rt_config(RtConfig {
                ring,
                ..RtConfig::default()
            })
            .boot();
        let arr = rt.alloc(2, 12, Distribution::Cyclic);
        for _ in 0..200u32 {
            rt.spawn(0, arr.block(1), bump, vec![0u8; 16], None);
        }
        rt.run();
        rt.counters().msgs_sent
    };
    let plain = run(None);
    let batched = run(Some(RingConfig::default()));
    assert!(
        batched * 4 < plain,
        "batched={batched} plain={plain}: ring batching should slash message count"
    );
}

#[test]
fn doorbell_timer_drains_partial_batches() {
    let mut b = Runtime::builder(2, GasMode::AgasNetwork);
    let count = Rc::new(Cell::new(0u32));
    let c2 = count.clone();
    let bump = b.register("bump", move |_, _| c2.set(c2.get() + 1));
    // Huge thresholds: only the moderation timer can ring the doorbell.
    let mut rt = b.rt_config(ringed(1_000_000, Time::from_us(3))).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    for _ in 0..5 {
        rt.spawn(0, arr.block(1), bump, vec![], None);
    }
    rt.run();
    assert_eq!(count.get(), 5, "timer doorbell lost parcels");
    assert_eq!(rt.eng.state.total_rt_stats().batches_sent, 1);
}

#[test]
fn local_parcels_bypass_the_ring() {
    let mut b = Runtime::builder(2, GasMode::AgasNetwork);
    let hit = Rc::new(Cell::new(false));
    let h = hit.clone();
    let probe = b.register("probe", move |_, _| h.set(true));
    let mut rt = b.rt_config(ringed(1_000_000, Time::from_ms(10))).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    // Block 0 is local to locality 0: must not sit in a submission ring.
    rt.spawn(0, arr.block(0), probe, vec![], None);
    rt.eng.run_until(Time::from_us(50));
    assert!(hit.get(), "local parcel stuck behind the ring");
    rt.run();
}

#[test]
fn ring_batching_preserves_gups_checksum() {
    let cfg = workloads::gups::GupsConfig {
        cells_per_loc: 256,
        updates_per_loc: 200,
        window: 8,
        use_actions: true,
        ..workloads::gups::GupsConfig::default()
    };
    let expect = workloads::gups::expected_checksum(&cfg, 3);
    let mut b = Runtime::builder(3, GasMode::AgasNetwork);
    workloads::gups::register_actions(&mut b);
    let mut rt = b.rt_config(ringed(16, Time::from_us(5))).boot();
    let table = workloads::gups::alloc_table(&mut rt, &cfg);
    workloads::gups::run(&mut rt, &cfg, &table);
    assert_eq!(workloads::gups::table_checksum(&rt, &table), expect);
}
