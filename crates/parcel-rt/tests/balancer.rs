//! The in-runtime load-balancer service: telemetry-driven migration.

use agas::{Distribution, GasMode};
use netsim::Time;
use parcel_rt::{BalancerConfig, Runtime};
use std::cell::Cell;
use std::rc::Rc;
use workloads::driver::IssueFn;

fn hot_traffic(rt: &mut Runtime, data: &agas::GlobalArray, ops_per_loc: u64) {
    // Every locality hammers the first 4 blocks (all initially on loc 0).
    let blocks = data.blocks.clone();
    let issue: Rc<IssueFn> = Rc::new(move |eng, loc, seq, ctx| {
        let gva = blocks[((seq + loc as u64) % 4) as usize];
        agas::ops::memget(eng, loc, gva, 512, ctx);
    });
    let n = rt.n();
    workloads::driver::pump_all(&mut rt.eng, n, ops_per_loc, 8, issue, |_| {});
}

#[test]
fn balancer_spreads_hot_blocks() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut rt = Runtime::builder(4, mode).boot();
        // Blocked placement: the 4 hot blocks start together on locality 0.
        let data = rt.alloc(16, 13, Distribution::Blocked);
        rt.start_balancer(BalancerConfig {
            period: Time::from_us(100),
            moves_per_round: 2,
            min_heat: 4,
            ..BalancerConfig::default()
        });
        hot_traffic(&mut rt, &data, 600);
        rt.run();
        rt.assert_quiescent();
        let stats = rt.eng.state.balancer_stats;
        assert!(stats.rounds >= 2, "{mode:?}: balancer never ran");
        assert!(
            stats.migrations >= 2,
            "{mode:?}: balancer never moved anything"
        );
        // The 4 hot blocks must no longer share one locality.
        let owners: std::collections::HashSet<u32> = (0..4u64)
            .map(|i| {
                let key = data.block(i).block_key();
                (0..4u32)
                    .find(|&l| rt.eng.state.gas[l as usize].btt.is_resident(key))
                    .unwrap()
            })
            .collect();
        assert!(
            owners.len() >= 2,
            "{mode:?}: hot set still colocated: {owners:?}"
        );
    }
}

#[test]
fn balancer_stops_when_idle() {
    let mut rt = Runtime::builder(2, GasMode::AgasNetwork).boot();
    let _data = rt.alloc(4, 12, Distribution::Cyclic);
    rt.start_balancer(BalancerConfig {
        period: Time::from_us(50),
        idle_rounds_to_stop: 2,
        ..BalancerConfig::default()
    });
    // No traffic at all: the service must terminate so the engine quiesces.
    rt.run();
    assert!(
        rt.now() < Time::from_ms(1),
        "balancer kept the engine alive"
    );
    assert_eq!(rt.eng.state.balancer_stats.migrations, 0);
}

#[test]
fn balancer_ignores_balanced_load() {
    let mut rt = Runtime::builder(4, GasMode::AgasNetwork).boot();
    // Cyclic placement: load is already even.
    let data = rt.alloc(16, 13, Distribution::Cyclic);
    rt.start_balancer(BalancerConfig {
        period: Time::from_us(100),
        ..BalancerConfig::default()
    });
    let blocks = data.blocks.clone();
    let issue: Rc<IssueFn> = Rc::new(move |eng, loc, seq, ctx| {
        // Uniform traffic over all 16 blocks.
        let gva = blocks[((seq * 5 + loc as u64) % 16) as usize];
        agas::ops::memget(eng, loc, gva, 256, ctx);
    });
    workloads::driver::pump_all(&mut rt.eng, 4, 400, 8, issue, |_| {});
    rt.run();
    assert_eq!(
        rt.eng.state.balancer_stats.migrations, 0,
        "balanced load must not trigger migrations"
    );
}

#[test]
fn balancer_under_traffic_is_deterministic() {
    let run = || {
        let mut rt = Runtime::builder(4, GasMode::AgasNetwork).seed(5).boot();
        let data = rt.alloc(16, 13, Distribution::Blocked);
        rt.start_balancer(BalancerConfig {
            period: Time::from_us(100),
            ..BalancerConfig::default()
        });
        hot_traffic(&mut rt, &data, 400);
        rt.run();
        (rt.eng.trace_hash(), rt.eng.state.balancer_stats.migrations)
    };
    let counted = Rc::new(Cell::new(0));
    let _ = counted;
    assert_eq!(run(), run());
}

/// Regression test for hit-telemetry ordering: the balancer's inputs come
/// from `XlateTable::take_hit_telemetry`, which historically drained a
/// `HashMap` in iteration order — identical runs could hand the balancer
/// identically-valued candidates in different orders. The drain is now
/// sorted by block key; two identical runs must produce the identical
/// decision sequence, observed as the exact final placement of every block
/// (not just the migration count).
#[test]
fn identical_runs_make_identical_balancer_decisions() {
    let run = || {
        let mut rt = Runtime::builder(4, GasMode::AgasNetwork).seed(9).boot();
        let data = rt.alloc(16, 13, Distribution::Blocked);
        rt.start_balancer(BalancerConfig {
            period: Time::from_us(100),
            moves_per_round: 2,
            min_heat: 4,
            ..BalancerConfig::default()
        });
        hot_traffic(&mut rt, &data, 600);
        rt.run();
        rt.assert_quiescent();
        let placement: Vec<u32> = (0..16u64)
            .map(|i| {
                let key = data.block(i).block_key();
                (0..4u32)
                    .find(|&l| rt.eng.state.gas[l as usize].btt.is_resident(key))
                    .expect("block lost")
            })
            .collect();
        (
            rt.eng.trace_hash(),
            rt.eng.state.balancer_stats.migrations,
            placement,
        )
    };
    let a = run();
    let b = run();
    assert!(a.1 > 0, "workload never exercised a balancer decision");
    assert_eq!(a, b, "balancer decisions diverged between identical runs");
}
