//! Lane-count independence of the sharded parcel runtime.
//!
//! Every workload in [`parcel_rt::workloads`] must produce the same
//! answer *and* the same folded `(time, seq)` schedule on the sequential
//! engine and on the sharded engine at 1/2/4/8 lanes — with adaptive
//! lookahead windows off and on, with and without parcel submission
//! rings, in both AGAS modes. The trace hash folds every executed event,
//! so equality here is a complete witness that sharded execution (and the
//! adaptive controller's widened/serial windows) replayed the sequential
//! schedule bit-for-bit.

use agas::GasMode;
use netsim::{AdaptiveWindow, NetConfig, RingConfig, Time};
use parcel_rt::workloads::{bfs_tree, ping_pong, spray_reduce, WorkloadResult, WorkloadSpec};

const LANES: [Option<usize>; 5] = [None, Some(1), Some(2), Some(4), Some(8)];

fn jittery() -> NetConfig {
    NetConfig {
        jitter_ns: 400,
        ..NetConfig::ideal()
    }
}

/// Run `f` across the lane grid (optionally with adaptive windows) and
/// assert every run reproduces the sequential result exactly.
fn grid(
    name: &str,
    adaptive: bool,
    f: impl Fn(&WorkloadSpec) -> WorkloadResult,
    base: WorkloadSpec,
) {
    let mut reference: Option<WorkloadResult> = None;
    for lanes in LANES {
        let spec = WorkloadSpec {
            lanes,
            adaptive: (adaptive && lanes.is_some()).then(AdaptiveWindow::default),
            ..base
        };
        let got = f(&spec);
        assert!(
            got.correct(),
            "{name} (lanes={lanes:?}, adaptive={adaptive}): value {} != expected {}",
            got.value,
            got.expected
        );
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(
                &got, want,
                "{name} (lanes={lanes:?}, adaptive={adaptive}): diverged from sequential run"
            ),
        }
    }
}

#[test]
fn ping_pong_is_lane_independent() {
    for mode in [GasMode::AgasNetwork, GasMode::AgasSoftware] {
        let spec = WorkloadSpec {
            net: jittery(),
            ..WorkloadSpec::new(4, mode)
        };
        grid("ping_pong", false, |s| ping_pong(s, 40), spec);
        grid("ping_pong", true, |s| ping_pong(s, 40), spec);
    }
}

#[test]
fn spray_reduce_is_lane_independent() {
    for mode in [GasMode::AgasNetwork, GasMode::AgasSoftware] {
        let spec = WorkloadSpec {
            net: jittery(),
            ..WorkloadSpec::new(8, mode)
        };
        grid("spray_reduce", false, spray_reduce, spec);
        grid("spray_reduce", true, spray_reduce, spec);
    }
}

#[test]
fn bfs_tree_is_lane_independent() {
    for mode in [GasMode::AgasNetwork, GasMode::AgasSoftware] {
        let spec = WorkloadSpec {
            net: jittery(),
            ..WorkloadSpec::new(8, mode)
        };
        grid("bfs_tree", false, bfs_tree, spec);
        grid("bfs_tree", true, bfs_tree, spec);
    }
}

#[test]
fn ringed_parcels_stay_lane_independent() {
    // Submission rings batch parcels into shared doorbells; the coalesced
    // schedule must still replay identically across lanes, adaptive
    // ring controllers included.
    let ring = RingConfig {
        doorbell_batch: 4,
        doorbell_delay: Time::from_ns(300),
        adaptive: Some(netsim::AdaptiveRing::default()),
        ..RingConfig::default()
    };
    let spec = WorkloadSpec {
        ring: Some(ring),
        ..WorkloadSpec::new(6, GasMode::AgasNetwork)
    };
    grid("spray_reduce+ring", false, spray_reduce, spec);
    grid("spray_reduce+ring", true, spray_reduce, spec);
    grid("bfs_tree+ring", true, bfs_tree, spec);
}

#[test]
fn adaptive_controller_engages_on_the_sharded_runtime() {
    // Sanity that the adaptive grid above actually exercised the
    // controller: a deep spray at 4 lanes with default adaptive config
    // must at least consult the controller (serial or widened windows).
    let spec = WorkloadSpec {
        lanes: Some(4),
        adaptive: Some(AdaptiveWindow::default()),
        ..WorkloadSpec::new(8, GasMode::AgasNetwork)
    };
    let rt = {
        let rtcfg = parcel_rt::RtConfig::default();
        let mut world = parcel_rt::ShardWorld::new(spec.n, spec.mode, spec.net, rtcfg);
        parcel_rt::workloads::install(&mut world);
        let mut s = netsim::ShardedEngine::new(world, spec.seed, 4);
        s.set_adaptive(AdaptiveWindow::default());
        let arr = s.drive(|e| {
            agas::alloc_array(
                e,
                8,
                parcel_rt::workloads::ANCHOR_CLASS,
                agas::Distribution::Cyclic,
            )
        });
        s.drive_at(0, move |e| {
            let lco = parcel_rt::lco::new_reduce(e, 0, 8, parcel_rt::ReduceOp::Sum);
            let args = parcel_rt::ArgWriter::new().u32(0).u32(8).gva(lco).finish();
            parcel_rt::send_parcel(
                e,
                0,
                parcel_rt::Parcel {
                    target: arr.block(0),
                    action: parcel_rt::workloads::SPRAY,
                    args,
                    cont: None,
                    src: 0,
                    hops: 0,
                },
            );
        });
        s.run();
        s.stats().clone()
    };
    assert!(
        rt.serial_windows + rt.widened + rt.windows > 0,
        "adaptive shard run recorded no window activity: {rt:?}"
    );
}
