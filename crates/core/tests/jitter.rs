//! Failure injection: wire jitter reorders deliveries between pairs. The
//! GAS protocols are request/response- and generation-based, so nothing may
//! break — these tests run the full op/migration mix on a jittery fabric.

mod common;

use agas::migrate::migrate_block;
use agas::ops::{memget, memput};
use agas::{alloc_array, Distribution, GasMode};
use common::{assert_consistent, Ev, World};
use netsim::OpId;
use netsim::{Engine, NetConfig};
use proptest::prelude::*;

fn jittery() -> NetConfig {
    NetConfig {
        jitter_ns: 400, // 4× the ideal fabric's base latency of 100 ns
        ..NetConfig::ideal()
    }
}

#[test]
fn ops_complete_under_heavy_jitter() {
    for mode in GasMode::ALL {
        let mut eng = Engine::new(World::new(4, mode, jittery()), 7);
        let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
        for i in 0..100u64 {
            let gva = arr.block(i % 8).with_offset((i / 8) * 32);
            memput(
                &mut eng,
                ((i + 1) % 4) as u32,
                gva,
                vec![(i + 1) as u8; 32],
                OpId::from_raw(i),
            );
        }
        eng.run();
        let done = eng
            .state
            .events
            .iter()
            .filter(|(_, _, e)| matches!(e, Ev::PutDone(_)))
            .count();
        assert_eq!(done, 100, "{mode:?}");
        assert_consistent(&eng, &arr.blocks);
        // Read everything back.
        for i in 0..100u64 {
            let gva = arr.block(i % 8).with_offset((i / 8) * 32);
            memget(
                &mut eng,
                ((i + 2) % 4) as u32,
                gva,
                32,
                OpId::from_raw(1000 + i),
            );
        }
        eng.run();
        for i in 0..100u64 {
            let ok = eng.state.events.iter().any(|(_, _, e)| {
                matches!(e, Ev::GetDone(c, d) if *c == 1000 + i && d == &vec![(i + 1) as u8; 32])
            });
            assert!(ok, "{mode:?}: op {i} corrupted under jitter");
        }
    }
}

#[test]
fn migrations_survive_jitter() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut eng = Engine::new(World::new(4, mode, jittery()), 11);
        let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
        // Interleave puts and migrations on every block.
        for round in 0..6u64 {
            for b in 0..4u64 {
                memput(
                    &mut eng,
                    (b % 4) as u32,
                    arr.block(b).with_offset(round * 16),
                    vec![(round * 4 + b + 1) as u8; 16],
                    OpId::from_raw(round * 4 + b),
                );
                migrate_block(
                    &mut eng,
                    0,
                    arr.block(b),
                    ((round + b) % 4) as u32,
                    OpId::from_raw(9000 + round * 4 + b),
                );
            }
            eng.run_steps(40);
        }
        eng.run();
        assert_consistent(&eng, &arr.blocks);
        let migs = eng
            .state
            .events
            .iter()
            .filter(|(_, _, e)| matches!(e, Ev::MigDone(..)))
            .count();
        assert_eq!(migs, 24, "{mode:?}");
        // All writes present.
        for round in 0..6u64 {
            for b in 0..4u64 {
                memget(
                    &mut eng,
                    1,
                    arr.block(b).with_offset(round * 16),
                    16,
                    OpId::from_raw(5000 + round * 4 + b),
                );
            }
        }
        eng.run();
        for round in 0..6u64 {
            for b in 0..4u64 {
                let want = vec![(round * 4 + b + 1) as u8; 16];
                let ok = eng.state.events.iter().any(|(_, _, e)| {
                    matches!(e, Ev::GetDone(c, d) if *c == 5000 + round * 4 + b && d == &want)
                });
                assert!(ok, "{mode:?}: write r{round} b{b} lost under jitter");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random schedules on a jittery fabric still deliver every completion
    /// and leave the cluster consistent.
    #[test]
    fn random_jittered_schedules_converge(
        ops in proptest::collection::vec((0u32..4, 0u64..8, 0u8..3), 1..60),
        jitter in 1u64..2000,
        seed in 0u64..200,
    ) {
        for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
            let net = NetConfig { jitter_ns: jitter, ..NetConfig::ideal() };
            let mut eng = Engine::new(World::new(4, mode, net), seed);
            let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
            let mut puts = 0;
            for (i, &(from, block, kind)) in ops.iter().enumerate() {
                match kind {
                    0 | 1 => {
                        memput(&mut eng, from, arr.block(block), vec![i as u8 + 1; 16], OpId::from_raw(i as u64));
                        puts += 1;
                    }
                    _ => migrate_block(&mut eng, from, arr.block(block), (block % 4) as u32, OpId::from_raw(7000 + i as u64)),
                }
                eng.run_steps(5);
            }
            eng.run();
            let done = eng
                .state
                .events
                .iter()
                .filter(|(_, _, e)| matches!(e, Ev::PutDone(_)))
                .count();
            prop_assert_eq!(done, puts, "{:?}", mode);
            assert_consistent(&eng, &arr.blocks);
        }
    }

    /// Jitter is drawn from the seeded PRNG: identical seeds give identical
    /// jittered executions.
    #[test]
    fn jitter_is_deterministic(seed in 0u64..1000) {
        let run = || {
            let mut eng = Engine::new(World::new(3, GasMode::AgasNetwork, jittery()), seed);
            let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
            for i in 0..30u64 {
                memput(&mut eng, (i % 3) as u32, arr.block(i % 4), vec![1; 8], OpId::from_raw(i));
            }
            eng.run();
            (eng.trace_hash(), eng.now())
        };
        prop_assert_eq!(run(), run());
    }
}

/// Fault injection: a NIC firmware reset wipes every live translation
/// entry mid-run. The miss interrupts reinstall entries from the BTT and
/// every operation still completes with correct data.
#[test]
fn nic_table_flush_mid_run_recovers() {
    let mut eng = Engine::new(World::new(4, GasMode::AgasNetwork, NetConfig::ideal()), 23);
    let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
    for i in 0..60u64 {
        // (i+1)%4 ≠ home((i%8)) for every i: all ops are remote.
        memput(
            &mut eng,
            ((i + 1) % 4) as u32,
            arr.block(i % 8).with_offset((i / 8) * 64),
            vec![(i + 1) as u8; 64],
            OpId::from_raw(i),
        );
        if i == 30 {
            // Reset every NIC's table while half the traffic is in flight.
            for l in 0..4u32 {
                eng.state.cluster.loc_mut(l).nic.xlate.flush_live();
            }
        }
        eng.run_steps(10);
    }
    eng.run();
    let done = eng
        .state
        .events
        .iter()
        .filter(|(_, _, e)| matches!(e, Ev::PutDone(_)))
        .count();
    assert_eq!(done, 60, "flush lost operations");
    let total = eng.state.cluster.total_counters();
    assert!(total.xlate_misses > 0, "flush should have caused misses");
    // Every write still readable.
    for i in 0..60u64 {
        memget(
            &mut eng,
            1,
            arr.block(i % 8).with_offset((i / 8) * 64),
            64,
            OpId::from_raw(1000 + i),
        );
    }
    eng.run();
    for i in 0..60u64 {
        let ok = eng.state.events.iter().any(|(_, _, e)| {
            matches!(e, Ev::GetDone(c, d) if *c == 1000 + i && d == &vec![(i + 1) as u8; 64])
        });
        assert!(ok, "op {i} corrupted by the table flush");
    }
}
