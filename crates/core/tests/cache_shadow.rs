//! Shadow-model equivalence for the owner cache.
//!
//! The oracle is a naive MRU-first `Vec` replicating the cache's contract:
//! LRU-bounded, newest-generation-wins on update, touch-on-lookup, plus
//! the eviction-boundary generation guard (a racing hint older than the
//! generation just evicted for the same key is dropped). The real cache's
//! one-entry memo must be observationally invisible — every lookup result
//! has to match the memo-free oracle exactly.

use agas::{OwnerCache, OwnerHint};
use proptest::prelude::*;

struct ShadowCache {
    capacity: usize,
    entries: Vec<(u64, OwnerHint)>, // MRU-first
    last_evicted: Option<(u64, u32)>,
}

impl ShadowCache {
    fn new(capacity: usize) -> ShadowCache {
        ShadowCache {
            capacity,
            entries: Vec::new(),
            last_evicted: None,
        }
    }

    fn lookup(&mut self, k: u64) -> Option<OwnerHint> {
        let pos = self.entries.iter().position(|&(sk, _)| sk == k)?;
        let e = self.entries.remove(pos);
        self.entries.insert(0, e);
        Some(e.1)
    }

    fn update(&mut self, k: u64, hint: OwnerHint) {
        if let Some(pos) = self.entries.iter().position(|&(sk, _)| sk == k) {
            let (_, old) = self.entries.remove(pos);
            let kept = if old.generation <= hint.generation {
                hint
            } else {
                old
            };
            self.entries.insert(0, (k, kept));
            return;
        }
        if let Some((vk, vg)) = self.last_evicted {
            if vk == k && hint.generation < vg {
                return; // stale re-insert of the latest victim
            }
        }
        if self.capacity == 0 {
            return;
        }
        self.entries.insert(0, (k, hint));
        if self.entries.len() > self.capacity {
            let (ek, ev) = self.entries.pop().unwrap();
            self.last_evicted = Some((ek, ev.generation));
        }
    }

    fn invalidate(&mut self, k: u64) {
        self.entries.retain(|&(sk, _)| sk != k);
    }
}

proptest! {
    /// Arbitrary interleavings of update / lookup / invalidate with
    /// generation churn: the real cache (memo, flat table, victim guard)
    /// agrees with the oracle on every observable.
    #[test]
    fn owner_cache_matches_shadow(
        cap in 0usize..8,
        ops in proptest::collection::vec((0u8..3, 0u64..12, 0u32..6, 0u32..5), 0..400),
    ) {
        let mut real = OwnerCache::new(cap);
        let mut shadow = ShadowCache::new(cap);
        for (i, (op, k, owner, generation)) in ops.into_iter().enumerate() {
            match op {
                0 => {
                    let hint = OwnerHint { owner, generation };
                    real.update(k, hint);
                    shadow.update(k, hint);
                }
                1 => prop_assert_eq!(real.lookup(k), shadow.lookup(k), "lookup {} at step {}", k, i),
                _ => {
                    real.invalidate(k);
                    shadow.invalidate(k);
                }
            }
            prop_assert_eq!(real.len(), shadow.entries.len(), "len at step {}", i);
        }
        for k in 0..12u64 {
            prop_assert_eq!(real.lookup(k), shadow.lookup(k), "final lookup {}", k);
        }
    }

    /// Dependent-access shape (the memo's target workload): long runs of
    /// repeated lookups on one key interleaved with churn on others.
    #[test]
    fn memo_is_observationally_invisible(
        cap in 1usize..6,
        runs in proptest::collection::vec((0u64..6, 1u8..8, 0u64..6, 0u32..5), 0..100),
    ) {
        let mut real = OwnerCache::new(cap);
        let mut shadow = ShadowCache::new(cap);
        for (hot, reps, other, generation) in runs {
            let hint = OwnerHint { owner: other as u32, generation };
            real.update(other, hint);
            shadow.update(other, hint);
            for _ in 0..reps {
                prop_assert_eq!(real.lookup(hot), shadow.lookup(hot));
            }
            real.invalidate(other.wrapping_add(1) % 6);
            shadow.invalidate(other.wrapping_add(1) % 6);
        }
        prop_assert!(real.memo_hits() <= real.stats().0);
    }
}
