//! Ring-batched schedules, replayed under the sharded engine.
//!
//! The golden pins (`trace_pin.rs`, `shard_pin.rs`) all run with rings
//! disabled — that keeps their hashes stable across the ring refactor.
//! This suite covers the *enabled* side: with descriptor rings posting
//! batched doorbells and moderation timers coalescing completions, the
//! schedule is still a pure function of the seed, so the sequential run's
//! `(trace_hash, now, events)` must be reproduced bit-for-bit under shard
//! lane counts {1, 2, 4, 8}, and the chaos drop/corrupt cells must stay
//! violation-free and lane-invariant with every op issued through rings.
//!
//! Shared-memory domains shrink the sharded engine's lookahead window (the
//! load/store short-circuit is cheaper than any wire hop), so the shm
//! scenario doubles as a regression test for that window math.

use agas::check::Violation;
use agas::migrate::migrate_block;
use agas::ops::{get_many, memamo, memget, memput, put_many};
use agas::{alloc_array, Distribution, GasMode, GlobalArray, SimWorld};
use netsim::{
    AmoOp, Engine, FaultPlan, FaultPlane, FaultRates, LocalityId, NetConfig, OpId, RingConfig,
    ShardedEngine, ShmDomain, Time,
};
use photon::PhotonConfig;

/// Lane counts every ring-enabled scenario must agree across. The
/// sequential engine (`None`) is the reference.
const GRID: [Option<usize>; 5] = [None, Some(1), Some(2), Some(4), Some(8)];

fn ring_photon() -> PhotonConfig {
    PhotonConfig {
        ring: Some(RingConfig {
            doorbell_batch: 4,
            doorbell_delay: Time::from_us(2),
            ..RingConfig::default()
        }),
        ..PhotonConfig::default()
    }
}

fn jittery() -> NetConfig {
    NetConfig {
        jitter_ns: 400,
        ..NetConfig::ideal()
    }
}

enum Harness {
    Seq(Engine<SimWorld>),
    Shard(ShardedEngine<SimWorld>),
}

impl Harness {
    fn new(n: usize, net: NetConfig, seed: u64, shards: Option<usize>) -> Harness {
        let world = SimWorld::with_photon(n, GasMode::AgasNetwork, net, ring_photon());
        match shards {
            None => Harness::Seq(Engine::new(world, seed)),
            Some(k) => Harness::Shard(ShardedEngine::new(world, seed, k)),
        }
    }

    fn world(&mut self) -> &mut SimWorld {
        match self {
            Harness::Seq(e) => &mut e.state,
            Harness::Shard(s) => s.state(),
        }
    }

    fn issue(&mut self, loc: LocalityId, f: impl FnOnce(&mut Engine<SimWorld>) + 'static) {
        match self {
            Harness::Seq(e) => f(e),
            Harness::Shard(s) => s.drive_at(loc, f),
        }
    }

    fn alloc(&mut self, blocks: u64, class: u8) -> GlobalArray {
        match self {
            Harness::Seq(e) => alloc_array(e, blocks, class, Distribution::Cyclic),
            Harness::Shard(s) => s.drive(|e| alloc_array(e, blocks, class, Distribution::Cyclic)),
        }
    }

    fn run(&mut self) {
        match self {
            Harness::Seq(e) => e.run(),
            Harness::Shard(s) => s.run(),
        };
    }

    fn run_steps(&mut self, n: u64) {
        match self {
            Harness::Seq(e) => e.run_steps(n),
            Harness::Shard(s) => s.run_steps(n),
        };
    }

    fn finish(&mut self) -> (u64, u64, u64) {
        self.run();
        match self {
            Harness::Seq(e) => (e.trace_hash(), e.now().ps(), e.events_executed()),
            Harness::Shard(s) => (s.trace_hash(), s.now().ps(), s.events_executed()),
        }
    }
}

/// Run `scenario` across the whole lane grid and demand every run lands on
/// the sequential witness. Also sanity-check the rings actually engaged:
/// the scenario must have rung at least one batched (multi-desc) doorbell.
fn lane_invariant(name: &str, scenario: impl Fn(Option<usize>) -> (u64, u64, u64)) {
    let reference = scenario(None);
    for shards in GRID {
        let got = scenario(shards);
        assert_eq!(
            got, reference,
            "{name} (shards={shards:?}): ring-batched schedule diverged — \
             observed (hash, ps, events) = ({:#018x}, {}, {})",
            got.0, got.1, got.2
        );
    }
}

/// Vectored put/get bursts through the rings under jitter: every burst
/// targets one peer, so descriptors pile into one ring and share
/// doorbells; partial tails drain on the moderation timer.
fn vectored_bursts(shards: Option<usize>) -> (u64, u64, u64) {
    let mut h = Harness::new(4, jittery(), 31, shards);
    let arr = h.alloc(8, 12);
    for round in 0..6u64 {
        for loc in 0..4u32 {
            let blocks = arr.blocks.clone();
            h.issue(loc, move |eng| {
                let puts = (0..6u64)
                    .map(|i| {
                        let b = (round + i + u64::from(loc)) % 8;
                        let gva = blocks[b as usize].with_offset((i % 8) * 16);
                        (
                            gva,
                            vec![(round * 8 + i + 1) as u8; 16],
                            OpId::from_raw(round * 100 + u64::from(loc) * 10 + i),
                        )
                    })
                    .collect();
                put_many(eng, loc, puts);
            });
        }
        h.run_steps(50);
    }
    for loc in 0..4u32 {
        let blocks = arr.blocks.clone();
        h.issue(loc, move |eng| {
            let gets = (0..8u64)
                .map(|b| {
                    (
                        blocks[b as usize].with_offset(0),
                        16,
                        OpId::from_raw(5000 + u64::from(loc) * 10 + b),
                    )
                })
                .collect();
            get_many(eng, loc, gets);
        });
    }
    h.run();
    let stats = h.world().data.eps[0].ring_stats();
    assert!(
        stats.doorbells > 0 && stats.coalesced > 0,
        "rings never engaged: {stats:?}"
    );
    h.finish()
}

/// Fetch-adds, compare-swaps, and a migration racing through the rings:
/// same-responder AMOs share doorbells (the `amo_batched` path) while the
/// home moves underneath them.
fn amo_ring_mix(shards: Option<usize>) -> (u64, u64, u64) {
    let mut h = Harness::new(4, jittery(), 37, shards);
    let arr = h.alloc(4, 12);
    for i in 0..32u64 {
        let loc = (i % 4) as u32;
        let gva = arr.block(i % 4).with_offset((i % 8) * 8);
        h.issue(loc, move |eng| {
            memamo(
                eng,
                loc,
                gva,
                AmoOp::FetchAdd { operand: i + 1 },
                OpId::from_raw(i),
            );
        });
        if i % 6 == 5 {
            let cas = arr.block((i + 1) % 4);
            h.issue(loc, move |eng| {
                memamo(
                    eng,
                    loc,
                    cas,
                    AmoOp::CompareSwap {
                        expected: 0,
                        desired: i,
                    },
                    OpId::from_raw(500 + i),
                );
            });
        }
        if i % 16 == 9 {
            let mig = arr.block(i % 4);
            h.issue(loc, move |eng| {
                migrate_block(
                    eng,
                    loc,
                    mig,
                    ((i + 1) % 4) as u32,
                    OpId::from_raw(9000 + i),
                );
            });
        }
        h.run_steps(10);
    }
    h.finish()
}

/// Mixed intra-/inter-domain traffic with an [`ShmDomain`] of size 2:
/// localities {0,1} and {2,3} short-circuit the NIC inside their domain
/// (zero wire messages, load/store costs) while cross-domain ops still
/// ride the rings. Exercises the shrunken lookahead window under lanes.
fn shm_domain_mix(shards: Option<usize>) -> (u64, u64, u64) {
    let net = NetConfig {
        shm: Some(ShmDomain::node(2)),
        ..jittery()
    };
    let mut h = Harness::new(4, net, 43, shards);
    let arr = h.alloc(8, 12);
    for i in 0..40u64 {
        let loc = (i % 4) as u32;
        // Even ops stay inside the domain (peer = partner locality), odd
        // ops cross it.
        let gva = arr.block((i * 3) % 8).with_offset((i % 4) * 32);
        h.issue(loc, move |eng| {
            memput(eng, loc, gva, vec![(i + 1) as u8; 32], OpId::from_raw(i));
        });
        if i % 3 == 2 {
            h.issue(loc, move |eng| {
                memamo(
                    eng,
                    loc,
                    gva,
                    AmoOp::FetchAdd { operand: i },
                    OpId::from_raw(600 + i),
                );
            });
        }
        h.run_steps(12);
    }
    for i in 0..16u64 {
        let loc = ((i + 1) % 4) as u32;
        let gva = arr.block(i % 8);
        h.issue(loc, move |eng| {
            memget(eng, loc, gva, 32, OpId::from_raw(2000 + i));
        });
    }
    h.finish()
}

#[test]
fn ring_shadow_vectored_bursts() {
    lane_invariant("vectored_bursts", vectored_bursts);
}

#[test]
fn ring_shadow_amo_mix() {
    lane_invariant("amo_ring_mix", amo_ring_mix);
}

#[test]
fn ring_shadow_shm_domain() {
    lane_invariant("shm_domain_mix", shm_domain_mix);
}

// ------------------------------------------------------- chaos, ringed

/// The slot-idempotent chaos workload from `shard_chaos.rs`, with every
/// op issued through the rings. Returns the full determinism witness plus
/// the correctness verdict inputs.
fn chaos_cell(rates: FaultRates, seed: u64, shards: Option<usize>) -> (u64, u64, u64) {
    let plan = FaultPlan {
        seed: 61,
        rates,
        link_rates: Vec::new(),
        flaps: Vec::new(),
        partitions: Vec::new(),
    };
    let mut world =
        SimWorld::with_photon(4, GasMode::AgasNetwork, NetConfig::ideal(), ring_photon());
    world.data.cluster.faults = Some(FaultPlane::new(plan));
    for g in &mut world.data.gas {
        g.cfg.op_deadline = Some(Time::from_us(300));
        g.cfg.sweep_interval = Time::from_us(30);
        g.cfg.retry_on_deadline = true;
        g.cfg.record_history = true;
    }
    let mut h = match shards {
        None => Harness::Seq(Engine::new(world, seed)),
        Some(k) => Harness::Shard(ShardedEngine::new(world, seed, k)),
    };
    let arr = h.alloc(8, 12);
    let mut puts = 0u64;
    let mut gets = 0u64;
    for round in 0..10u64 {
        for l in 0..4u32 {
            let wb = (round + 3 * u64::from(l)) % 8;
            let gva = arr.block(wb).with_offset(64 + u64::from(l) * 8);
            let ctx = OpId::from_raw(puts);
            h.issue(l, move |eng| {
                memput(eng, l, gva, vec![l as u8 + 1; 8], ctx);
            });
            puts += 1;
            let rb = (round + 5 * u64::from(l) + 1) % 8;
            let owner = (l + 1) % 4;
            let gva = arr.block(rb).with_offset(64 + u64::from(owner) * 8);
            let ctx = OpId::from_raw((1 << 40) | gets);
            h.issue(l, move |eng| {
                memget(eng, l, gva, 8, ctx);
            });
            gets += 1;
        }
        h.run_steps(64);
    }
    let witness = h.finish();
    // Correctness inside every cell: full accounting, consistent history.
    let blocks = arr.blocks.clone();
    let w = h.world();
    let acked = w.put_acks() + w.get_acks();
    assert_eq!(
        acked + w.op_failures(),
        puts + gets,
        "chaos cell (shards={shards:?}): ops silently lost"
    );
    let violations: Vec<Violation> = w.violations(&blocks);
    assert!(
        violations.is_empty(),
        "chaos cell (shards={shards:?}): {violations:?}"
    );
    witness
}

fn drop_rates(p: f64) -> FaultRates {
    FaultRates {
        drop: p,
        dup: p / 2.0,
        corrupt: 0.0,
        delay_p: p,
        delay_min_ns: 200,
        delay_max_ns: 4_000,
    }
}

fn corrupt_rates(p: f64) -> FaultRates {
    FaultRates {
        drop: 0.0,
        dup: p / 2.0,
        corrupt: p,
        delay_p: p,
        delay_min_ns: 200,
        delay_max_ns: 4_000,
    }
}

#[test]
fn ring_shadow_chaos_drop() {
    for seed in [5u64, 13] {
        lane_invariant("chaos_drop/3%", |shards| {
            chaos_cell(drop_rates(0.03), seed, shards)
        });
    }
}

#[test]
fn ring_shadow_chaos_corrupt() {
    for seed in [5u64, 13] {
        lane_invariant("chaos_corrupt/3%", |shards| {
            chaos_cell(corrupt_rates(0.03), seed, shards)
        });
    }
}
