//! Shadow-model check for the fault plane: a **lossless** `FaultPlan` must
//! be observationally invisible.
//!
//! The fault plane owns a private RNG stream and takes a draw-free early
//! exit for lossless plans, so installing one must not move a single event:
//! the `(trace_hash, now)` pair of every scenario — and the golden pins
//! committed in `trace_pin.rs` — have to stay bit-for-bit identical whether
//! the plane is absent or present-but-lossless. This is the guard that
//! keeps fault-injection hooks out of the simulator's timing model.

mod common;

use agas::migrate::migrate_block;
use agas::ops::{memget, memput};
use agas::{alloc_array, Distribution, GasMode};
use common::World;
use netsim::{Engine, FaultPlan, FaultPlane, NetConfig, OpId};
use proptest::prelude::*;

fn jittery() -> NetConfig {
    NetConfig {
        jitter_ns: 400,
        ..NetConfig::ideal()
    }
}

/// The trace_pin `jitter_puts` scenario, with an optional fault plan
/// installed before any traffic flows.
fn jitter_puts(mode: GasMode, seed: u64, plan: Option<FaultPlan>) -> (u64, u64) {
    let mut eng = Engine::new(World::new(3, mode, jittery()), seed);
    if let Some(p) = plan {
        eng.state.cluster.faults = Some(FaultPlane::new(p));
    }
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    for i in 0..30u64 {
        memput(
            &mut eng,
            (i % 3) as u32,
            arr.block(i % 4).with_offset((i / 4) * 16),
            vec![(i + 1) as u8; 16],
            OpId::from_raw(i),
        );
    }
    eng.run();
    for i in 0..30u64 {
        memget(
            &mut eng,
            ((i + 1) % 3) as u32,
            arr.block(i % 4).with_offset((i / 4) * 16),
            16,
            OpId::from_raw(100 + i),
        );
    }
    eng.run();
    (eng.trace_hash(), eng.now().ps())
}

/// The trace_pin `migration_mix` scenario, with an optional fault plan.
fn migration_mix(mode: GasMode, plan: Option<FaultPlan>) -> (u64, u64) {
    let mut eng = Engine::new(World::new(4, mode, jittery()), 11);
    if let Some(p) = plan {
        eng.state.cluster.faults = Some(FaultPlane::new(p));
    }
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    for round in 0..6u64 {
        for b in 0..4u64 {
            memput(
                &mut eng,
                (b % 4) as u32,
                arr.block(b).with_offset(round * 16),
                vec![(round * 4 + b + 1) as u8; 16],
                OpId::from_raw(round * 4 + b),
            );
            migrate_block(
                &mut eng,
                0,
                arr.block(b),
                ((round + b) % 4) as u32,
                OpId::from_raw(9000 + round * 4 + b),
            );
        }
        eng.run_steps(40);
    }
    eng.run();
    (eng.trace_hash(), eng.now().ps())
}

// The committed golden pins (see trace_pin.rs) that the lossless plane must
// reproduce exactly.
const GOLDEN_JITTER_PGAS: (u64, u64) = (0x3a1b_a271_08e7_3ff4, 2_155_000);
const GOLDEN_JITTER_SW: (u64, u64) = (0x7b1b_771a_2630_7d1b, 6_591_400);
const GOLDEN_JITTER_NET: (u64, u64) = (0x4a67_b315_e66f_9216, 2_165_000);
const GOLDEN_MIG_SW: (u64, u64) = (0x50aa_0c4b_27e6_6b7e, 109_546_200);
const GOLDEN_MIG_NET: (u64, u64) = (0x6829_dca1_979a_1fcd, 100_872_800);

#[test]
fn lossless_plane_reproduces_the_golden_pins() {
    let plan = || Some(FaultPlan::lossless(0xDEAD_BEEF));
    assert_eq!(jitter_puts(GasMode::Pgas, 7, plan()), GOLDEN_JITTER_PGAS);
    assert_eq!(
        jitter_puts(GasMode::AgasSoftware, 7, plan()),
        GOLDEN_JITTER_SW
    );
    assert_eq!(
        jitter_puts(GasMode::AgasNetwork, 7, plan()),
        GOLDEN_JITTER_NET
    );
    assert_eq!(migration_mix(GasMode::AgasSoftware, plan()), GOLDEN_MIG_SW);
    assert_eq!(migration_mix(GasMode::AgasNetwork, plan()), GOLDEN_MIG_NET);
}

#[test]
fn lossless_plane_is_invisible_regardless_of_its_seed() {
    // The plane's RNG is private: different plan seeds must yield identical
    // traces when the plan is lossless.
    let a = migration_mix(GasMode::AgasNetwork, Some(FaultPlan::lossless(1)));
    let b = migration_mix(GasMode::AgasNetwork, Some(FaultPlan::lossless(2)));
    let none = migration_mix(GasMode::AgasNetwork, None);
    assert_eq!(a, none);
    assert_eq!(b, none);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Shadow model: for random engine seeds and modes, the run with a
    /// lossless plane installed is byte-identical to the run without one.
    #[test]
    fn lossless_plane_never_moves_a_trace(
        seed in 0u64..300,
        plan_seed in 0u64..300,
        mode_ix in 0usize..3,
    ) {
        let mode = GasMode::ALL[mode_ix];
        let bare = jitter_puts(mode, seed, None);
        let shadowed = jitter_puts(mode, seed, Some(FaultPlan::lossless(plan_seed)));
        prop_assert_eq!(bare, shadowed, "{:?} seed={}", mode, seed);
    }
}
