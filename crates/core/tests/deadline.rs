//! Fault injection: lost completions. The photon endpoint forgets its
//! in-flight wire ops (simulating a dropped completion/NACK), and the
//! per-locality deadline sweep must convert the resulting silence into a
//! deterministic `DeadlineExceeded` failure instead of a hang — under
//! jitter, and while migrations race the victim ops.

mod common;

use agas::migrate::migrate_block;
use agas::ops::{memget, memput};
use agas::{alloc_array, Distribution, GasMode};
use common::{Ev, World};
use netsim::{Engine, NetConfig, OpId, Time};

fn jittery() -> NetConfig {
    NetConfig {
        jitter_ns: 400,
        ..NetConfig::ideal()
    }
}

/// Build, run, and summarize one instance of the scenario: remote puts and
/// gets race migrations on a jittery fabric, and at `drop_at` every wire op
/// still in flight at locality 0 is forgotten.
fn run_scenario(seed: u64) -> (Vec<(Time, u32, Ev)>, u64) {
    let mut eng = Engine::new(World::new(4, GasMode::AgasNetwork, jittery()), seed);
    for g in &mut eng.state.gas {
        g.cfg.op_deadline = Some(Time::from_us(40));
        g.cfg.sweep_interval = Time::from_us(5);
    }
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    for i in 0..8u64 {
        let gva = arr.block(i % 4).with_offset((i / 4) * 64);
        memput(&mut eng, 0, gva, vec![i as u8 + 1; 64], OpId::from_raw(i));
        memget(&mut eng, 0, gva, 64, OpId::from_raw(100 + i));
    }
    // Migrations race the in-flight ops.
    migrate_block(&mut eng, 1, arr.block(1), 3, OpId::from_raw(900));
    migrate_block(&mut eng, 2, arr.block(2), 0, OpId::from_raw(901));
    // Lose whatever locality 0 still has on the wire shortly after issue.
    eng.schedule(Time::from_ns(150), |eng| {
        eng.state.eps[0].drop_pending_ops();
    });
    eng.run();
    let events = eng.state.events.clone();
    let failures = events
        .iter()
        .filter(|(_, _, e)| matches!(e, Ev::OpFailed(_, _)))
        .count() as u64;
    (events, failures)
}

#[test]
fn dropped_completion_fails_deadline_instead_of_hanging() {
    // eng.run() returning at all proves no hang; the sweep must both
    // reclaim the orphaned ops and disarm afterwards.
    let (events, failures) = run_scenario(11);
    assert!(
        failures > 0,
        "dropping in-flight wire ops must surface DeadlineExceeded failures"
    );
    for (_, _, e) in &events {
        if let Ev::OpFailed(_, msg) = e {
            assert!(
                msg.contains("deadline"),
                "expected a deadline failure, got: {msg}"
            );
        }
    }
    // Ops that were not dropped still complete.
    let completed = events
        .iter()
        .filter(|(_, _, e)| matches!(e, Ev::PutDone(_) | Ev::GetDone(_, _)))
        .count();
    assert!(
        completed + failures as usize >= 16,
        "every issued op must reach an outcome: {completed} completed, {failures} failed"
    );
}

#[test]
fn dropped_completion_recovery_is_deterministic() {
    let (a, fa) = run_scenario(23);
    let (b, fb) = run_scenario(23);
    assert_eq!(fa, fb);
    assert_eq!(a, b, "same seed must give an identical outcome timeline");
    // A different seed still terminates with the same accounting structure.
    let (_, fc) = run_scenario(24);
    assert!(fc > 0);
}

#[test]
fn no_deadline_configured_means_no_sweep_events() {
    // With op_deadline = None (the default) the sweep must never arm: the
    // schedule is identical to the seed behaviour, and nothing fails.
    let mut eng = Engine::new(World::new(2, GasMode::AgasNetwork, jittery()), 5);
    let arr = alloc_array(&mut eng, 2, 12, Distribution::Cyclic);
    memput(&mut eng, 0, arr.block(1), vec![3; 32], OpId::from_raw(1));
    eng.run();
    assert!(eng
        .state
        .events
        .iter()
        .all(|(_, _, e)| !matches!(e, Ev::OpFailed(_, _))));
    assert_eq!(eng.state.gas[0].outstanding_ops(), 0);
    assert!(!eng.state.gas[0].sweep_armed());
}
