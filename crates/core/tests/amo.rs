//! Protocol-level tests of NIC-executed active operations (AMOs):
//! translation + execution in one NIC visit, software fallback, migration
//! races, and exactly-once semantics under faults.
//!
//! Value verification deliberately stays inside the AMO vocabulary
//! (`FetchAdd { operand: 0 }` reads a word, `Gather` reads several) so AMO
//! words never alias put/get byte slots and the word-level history checker
//! sees every observation.

mod common;

use agas::migrate::migrate_block;
use agas::ops::memamo;
use agas::{alloc_array, Distribution, GasMode};
use common::{assert_consistent, engine, Ev, World};
use netsim::{AmoOp, AmoResult, Engine, FaultPlan, FaultPlane, NetConfig, OpId};

fn amo_result(eng: &Engine<World>, ctx: u64) -> Option<AmoResult> {
    eng.state.events.iter().find_map(|(_, _, e)| match e {
        Ev::AmoDone(c, r) if *c == ctx => Some(r.clone()),
        _ => None,
    })
}

fn mig_done(eng: &Engine<World>, ctx: u64) -> bool {
    eng.state
        .events
        .iter()
        .any(|(_, _, e)| matches!(e, Ev::MigDone(c, _) if *c == ctx))
}

/// Atomically read the 8-byte word at `gva` via a no-op fetch-add.
fn read_word(eng: &mut Engine<World>, loc: u32, gva: agas::Gva, ctx: u64) -> u64 {
    memamo(
        eng,
        loc,
        gva,
        AmoOp::FetchAdd { operand: 0 },
        OpId::from_raw(ctx),
    );
    eng.run();
    amo_result(eng, ctx).expect("read-back AMO incomplete").old
}

#[test]
fn all_kinds_round_trip_all_modes() {
    for mode in GasMode::ALL {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
        // Block 1 is homed at locality 1; operate from locality 0.
        let gva = arr.block(1);

        memamo(
            &mut eng,
            0,
            gva,
            AmoOp::FetchAdd { operand: 7 },
            OpId::from_raw(1),
        );
        eng.run();
        let r = amo_result(&eng, 1).expect("fetch-add incomplete");
        assert_eq!((r.old, r.applied), (0, true), "{mode:?}");

        memamo(
            &mut eng,
            0,
            gva,
            AmoOp::CompareSwap {
                expected: 7,
                desired: 100,
            },
            OpId::from_raw(2),
        );
        eng.run();
        let r = amo_result(&eng, 2).expect("cas incomplete");
        assert_eq!((r.old, r.applied), (7, true), "{mode:?}");

        // A mismatched CAS observes without modifying.
        memamo(
            &mut eng,
            0,
            gva,
            AmoOp::CompareSwap {
                expected: 7,
                desired: 999,
            },
            OpId::from_raw(3),
        );
        eng.run();
        let r = amo_result(&eng, 3).expect("failed cas incomplete");
        assert_eq!((r.old, r.applied), (100, false), "{mode:?}");

        // Masked put on the second word: set the low half only.
        memamo(
            &mut eng,
            0,
            gva.with_offset(8),
            AmoOp::MaskedPut {
                mask: 0xffff_ffff,
                value: 0xdead_beef,
            },
            OpId::from_raw(4),
        );
        eng.run();
        assert!(amo_result(&eng, 4).expect("masked put incomplete").applied);

        // Scatter words 2..4, then gather words 0..4 and check everything.
        memamo(
            &mut eng,
            0,
            gva,
            AmoOp::Scatter {
                writes: vec![(16, 0x1111), (24, 0x2222)],
            },
            OpId::from_raw(5),
        );
        eng.run();
        memamo(
            &mut eng,
            0,
            gva,
            AmoOp::Gather {
                offsets: vec![0, 8, 16, 24],
            },
            OpId::from_raw(6),
        );
        eng.run();
        let r = amo_result(&eng, 6).expect("gather incomplete");
        assert_eq!(r.values, vec![100, 0xdead_beef, 0x1111, 0x2222], "{mode:?}");
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn nic_executes_without_target_cpu() {
    // The tentpole claim: in NET mode the NIC translates *and* executes,
    // so the target CPU schedules zero handler events for any AMO kind.
    let mut eng = engine(2, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 2, 12, Distribution::Cyclic);
    let gva = arr.block(1);
    let ops: Vec<AmoOp> = vec![
        AmoOp::FetchAdd { operand: 3 },
        AmoOp::CompareSwap {
            expected: 3,
            desired: 5,
        },
        AmoOp::MaskedPut {
            mask: u64::MAX,
            value: 9,
        },
        AmoOp::Scatter {
            writes: vec![(8, 1), (16, 2)],
        },
        AmoOp::Gather {
            offsets: vec![0, 8],
        },
    ];
    for (i, op) in ops.into_iter().enumerate() {
        memamo(&mut eng, 0, gva, op, OpId::from_raw(i as u64));
        eng.run();
        assert!(amo_result(&eng, i as u64).is_some(), "op {i} incomplete");
    }
    let total = eng.state.cluster.total_counters();
    assert_eq!(total.rdma_amos, 5, "all five kinds ride the NIC path");
    assert_eq!(total.amo_executed, 5);
    assert_eq!(total.sw_handler_runs, 0, "target CPU never ran a handler");
    let stats = &eng.state.gas[0].stats;
    assert_eq!(stats.amos, 5);
    assert_eq!(stats.remote_ops, 5);
    for g in &eng.state.gas {
        assert_eq!(g.stats.sw_amos_handled, 0);
    }
}

#[test]
fn local_fast_path_all_modes() {
    for mode in GasMode::ALL {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
        // Block 0 is homed at locality 0; operate from locality 0.
        let gva = arr.block(0);
        memamo(
            &mut eng,
            0,
            gva,
            AmoOp::FetchAdd { operand: 11 },
            OpId::from_raw(1),
        );
        eng.run();
        assert_eq!(amo_result(&eng, 1).expect("local AMO incomplete").old, 0);
        let g = &eng.state.gas[0];
        assert_eq!(g.stats.local_ops, 1, "{mode:?}: local path not taken");
        let total = eng.state.cluster.total_counters();
        assert_eq!(total.rdma_amos + total.msgs_sent, 0, "{mode:?}");
    }
}

#[test]
fn software_modes_run_target_handler() {
    // SW mode has no NIC translation, and PGAS NICs have no AMO unit
    // against unregistered remote memory: both route through the home CPU.
    for mode in [GasMode::AgasSoftware, GasMode::Pgas] {
        let mut eng = engine(2, mode);
        let arr = alloc_array(&mut eng, 2, 12, Distribution::Cyclic);
        memamo(
            &mut eng,
            0,
            arr.block(1),
            AmoOp::FetchAdd { operand: 5 },
            OpId::from_raw(1),
        );
        eng.run();
        assert_eq!(amo_result(&eng, 1).expect("sw AMO incomplete").old, 0);
        assert_eq!(eng.state.cluster.total_counters().rdma_amos, 0, "{mode:?}");
        assert_eq!(eng.state.gas[1].stats.sw_amos_handled, 1, "{mode:?}");
        assert_eq!(read_word(&mut eng, 0, arr.block(1), 90), 5, "{mode:?}");
    }
}

#[test]
fn contended_fetch_add_linearizes() {
    // Every locality hammers one word; the sum must be exact and the
    // word-level history checker must accept the schedule.
    for mode in GasMode::ALL {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
        let gva = arr.block(1);
        let per_loc = 25u64;
        for loc in 0..4u32 {
            for i in 0..per_loc {
                memamo(
                    &mut eng,
                    loc,
                    gva,
                    AmoOp::FetchAdd { operand: 1 },
                    OpId::from_raw(u64::from(loc) * 1000 + i),
                );
            }
        }
        eng.run();
        assert_eq!(read_word(&mut eng, 3, gva, 9999), 4 * per_loc, "{mode:?}");
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn amo_racing_migration_never_lost_or_doubled() {
    // Fire a burst of increments, migrate the target mid-flight, keep
    // firing. Late arrivals at the old owner must NACK or forward —
    // never vanish, never double-apply.
    let mut eng = engine(4, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    let gva = arr.block(1);
    let n = 30u64;
    for i in 0..n {
        memamo(
            &mut eng,
            2,
            gva,
            AmoOp::FetchAdd { operand: 1 },
            OpId::from_raw(i),
        );
    }
    migrate_block(&mut eng, 0, gva, 3, OpId::from_raw(5000));
    for i in n..2 * n {
        memamo(
            &mut eng,
            2,
            gva,
            AmoOp::FetchAdd { operand: 1 },
            OpId::from_raw(i),
        );
    }
    eng.run();
    assert!(mig_done(&eng, 5000));
    assert!(eng.state.gas[3].btt.is_resident(gva.block_key()));
    assert_eq!(read_word(&mut eng, 2, gva, 9999), 2 * n);
    let total = eng.state.cluster.total_counters();
    assert_eq!(total.amo_executed, 2 * n + 1, "each increment applied once");
    assert_consistent(&eng, &arr.blocks);
}

#[test]
fn replay_cache_travels_with_migrating_block() {
    // Seed the old owner's responder cache, migrate, and check the entries
    // arrived at the new owner so post-migration retries still dedup.
    let mut eng = engine(3, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 3, 12, Distribution::Cyclic);
    let gva = arr.block(1);
    for i in 0..4 {
        memamo(
            &mut eng,
            0,
            gva,
            AmoOp::FetchAdd { operand: 1 },
            OpId::from_raw(i),
        );
    }
    eng.run();
    assert!(!eng.state.cluster.loc_mut(1).nic.amo.is_empty());
    migrate_block(&mut eng, 0, gva, 2, OpId::from_raw(100));
    eng.run();
    assert!(mig_done(&eng, 100));
    assert!(eng.state.cluster.loc_mut(1).nic.amo.is_empty());
    assert_eq!(eng.state.cluster.loc_mut(2).nic.amo.len(), 4);
}

#[test]
fn faulty_network_applies_each_amo_exactly_once() {
    // Drops force retries, duplicates hit the replay cache: the counter
    // still lands on exactly N and the word history stays clean.
    for seed in [11u64, 23, 47] {
        let mut eng = Engine::new(
            World::new(3, GasMode::AgasNetwork, NetConfig::ideal()),
            seed,
        );
        // Dropped traffic only recovers through the deadline sweep.
        let cfg = agas::GasConfig {
            op_deadline: Some(netsim::Time::from_us(300)),
            sweep_interval: netsim::Time::from_us(30),
            retry_on_deadline: true,
            ..agas::GasConfig::default()
        };
        for g in &mut eng.state.gas {
            *g = agas::GasLocal::new(cfg);
        }
        eng.state.cluster.faults = Some(FaultPlane::new(FaultPlan::uniform(seed, 0.15)));
        let arr = alloc_array(&mut eng, 3, 12, Distribution::Cyclic);
        let gva = arr.block(1);
        let n = 40u64;
        for i in 0..n {
            memamo(
                &mut eng,
                0,
                gva,
                AmoOp::FetchAdd { operand: 1 },
                OpId::from_raw(i),
            );
        }
        eng.run();
        let done = (0..n).filter(|i| amo_result(&eng, *i).is_some()).count() as u64;
        let failed = eng
            .state
            .events
            .iter()
            .filter(|(_, _, e)| matches!(e, Ev::OpFailed(c, _) if *c < n))
            .count() as u64;
        assert_eq!(done + failed, n, "seed {seed}: every op resolved");
        assert_eq!(failed, 0, "seed {seed}: retry machinery should recover");
        // Quiesce any in-flight duplicates, then audit the counter.
        let v = read_word(&mut eng, 2, gva, 9000);
        assert_eq!(v, n, "seed {seed}: lost or double-applied increments");
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn duplicated_requests_hit_replay_cache() {
    // A dup-heavy plan (no drops) must produce replay-cache hits and still
    // count each increment once.
    let mut eng = Engine::new(World::new(2, GasMode::AgasNetwork, NetConfig::ideal()), 7);
    let mut plan = FaultPlan::lossless(7);
    plan.rates.dup = 0.5;
    eng.state.cluster.faults = Some(FaultPlane::new(plan));
    let arr = alloc_array(&mut eng, 2, 12, Distribution::Cyclic);
    let gva = arr.block(1);
    let n = 40u64;
    for i in 0..n {
        memamo(
            &mut eng,
            0,
            gva,
            AmoOp::FetchAdd { operand: 1 },
            OpId::from_raw(i),
        );
    }
    eng.run();
    let total = eng.state.cluster.total_counters();
    assert!(total.amo_replays > 0, "dups should have hit the cache");
    assert_eq!(total.amo_executed, n, "fresh executions match issued ops");
    assert_eq!(read_word(&mut eng, 0, gva, 9000), n);
    assert_consistent(&eng, &arr.blocks);
}

#[test]
fn nic_table_miss_nacks_then_recovers() {
    // A 1-entry NIC translation table: the second block's first AMO misses,
    // NACKs with an interrupt-driven install, and the retry lands.
    let mut eng = Engine::new(
        World::new(
            2,
            GasMode::AgasNetwork,
            NetConfig {
                xlate_capacity: 1,
                ..NetConfig::ideal()
            },
        ),
        42,
    );
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Single(1));
    for i in 0..4 {
        memamo(
            &mut eng,
            0,
            arr.block(i),
            AmoOp::FetchAdd { operand: 1 },
            OpId::from_raw(i),
        );
        eng.run();
    }
    for i in 0..4 {
        assert_eq!(read_word(&mut eng, 0, arr.block(i), 100 + i), 1);
    }
    let total = eng.state.cluster.total_counters();
    assert!(total.amo_nacked > 0, "capacity-1 table must have missed");
    assert_eq!(total.amo_executed, 4 + 4, "4 increments + 4 read-backs");
}
