//! Property-based tests: arbitrary interleavings of puts, gets, and
//! migrations must terminate, deliver every completion, never corrupt data,
//! and leave the cluster consistent — in every GAS mode.

mod common;

use agas::migrate::migrate_block;
use agas::ops::{memget, memput};
use agas::{alloc_array, Distribution, GasMode};
use common::{assert_consistent, Ev, World};
use netsim::OpId;
use netsim::{Engine, NetConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put {
        from: u32,
        block: u64,
        slot: u64,
        val: u8,
    },
    Migrate {
        from: u32,
        block: u64,
        to: u32,
    },
}

fn op_strategy(nloc: u32, nblocks: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..nloc, 0..nblocks, 0..16u64, 1..=255u8).prop_map(|(from, block, slot, val)| Op::Put {
            from,
            block,
            slot,
            val,
        }),
        1 => (0..nloc, 0..nblocks, 0..nloc).prop_map(|(from, block, to)| Op::Migrate {
            from,
            block,
            to,
        }),
    ]
}

fn run_schedule(mode: GasMode, ops: &[Op], seed: u64) -> (Engine<World>, Vec<agas::Gva>) {
    let nloc = 4;
    let mut eng = Engine::new(World::new(nloc, mode, NetConfig::ideal()), seed);
    let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
    for (ctx, op) in ops.iter().enumerate() {
        let ctx = ctx as u64;
        match *op {
            Op::Put {
                from,
                block,
                slot,
                val,
            } => {
                let gva = arr.block(block).with_offset(slot * 256);
                memput(&mut eng, from, gva, vec![val; 256], OpId::from_raw(ctx));
            }
            Op::Migrate { from, block, to } => {
                if mode.supports_migration() {
                    migrate_block(&mut eng, from, arr.block(block), to, OpId::from_raw(ctx));
                }
            }
        }
        // Interleave: advance the world a little between submissions.
        eng.run_steps(3);
    }
    eng.run();
    (eng, arr.blocks.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every submitted operation completes, and the cluster ends consistent.
    #[test]
    fn all_ops_complete_and_world_stays_consistent(
        ops in proptest::collection::vec(op_strategy(4, 8), 1..60),
        seed in 0u64..1000,
    ) {
        for mode in GasMode::ALL {
            let (eng, blocks) = run_schedule(mode, &ops, seed);
            let puts_submitted = ops
                .iter()
                .filter(|o| matches!(o, Op::Put { .. }))
                .count();
            let migs_submitted = if mode.supports_migration() {
                ops.iter().filter(|o| matches!(o, Op::Migrate { .. })).count()
            } else {
                0
            };
            let puts_done = eng
                .state
                .events
                .iter()
                .filter(|(_, _, e)| matches!(e, Ev::PutDone(_)))
                .count();
            let migs_done = eng
                .state
                .events
                .iter()
                .filter(|(_, _, e)| matches!(e, Ev::MigDone(..)))
                .count();
            prop_assert_eq!(puts_done, puts_submitted, "{:?}: lost puts", mode);
            prop_assert_eq!(migs_done, migs_submitted, "{:?}: lost migrations", mode);
            prop_assert_eq!(
                (0..4).map(|l| eng.state.gas[l].outstanding_ops()).sum::<usize>(),
                0,
                "{:?}: dangling pending ops", mode
            );
            assert_consistent(&eng, &blocks);
        }
    }

    /// The *last* put to each slot is the value a subsequent get returns —
    /// even when migrations raced the writes. ("Last" is well-defined here
    /// because each slot is written by at most one put per schedule.)
    #[test]
    fn slot_values_survive_migration_races(
        writes in proptest::collection::vec((0u64..8, 0u64..16, 1u8..=255), 1..40),
        migs in proptest::collection::vec((0u64..8, 0u32..4), 0..10),
        seed in 0u64..1000,
    ) {
        // Deduplicate slots: keep the first write to each (block, slot).
        let mut seen = std::collections::HashSet::new();
        let writes: Vec<_> = writes
            .into_iter()
            .filter(|&(b, s, _)| seen.insert((b, s)))
            .collect();
        for mode in GasMode::ALL {
            let mut eng = Engine::new(World::new(4, mode, NetConfig::ideal()), seed);
            let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
            let mut ctx = 0;
            let mut mig_iter = migs.iter();
            for (i, &(block, slot, val)) in writes.iter().enumerate() {
                memput(&mut eng, (i % 4) as u32, arr.block(block).with_offset(slot * 256), vec![val; 256], OpId::from_raw(ctx));
                ctx += 1;
                if mode.supports_migration() && i % 3 == 1 {
                    if let Some(&(mblock, mto)) = mig_iter.next() {
                        migrate_block(&mut eng, 0, arr.block(mblock), mto, OpId::from_raw(ctx));
                        ctx += 1;
                    }
                }
                eng.run_steps(5);
            }
            eng.run();
            // Read everything back.
            for (i, &(block, slot, _)) in writes.iter().enumerate() {
                memget(&mut eng, ((i + 1) % 4) as u32, arr.block(block).with_offset(slot * 256), 256, OpId::from_raw(10_000 + i as u64));
            }
            eng.run();
            for (i, &(_, _, val)) in writes.iter().enumerate() {
                let got = eng.state.events.iter().find_map(|(_, _, e)| match e {
                    Ev::GetDone(c, d) if *c == 10_000 + i as u64 => Some(d.clone()),
                    _ => None,
                });
                prop_assert_eq!(got, Some(vec![val; 256]), "{:?}: slot {} wrong", mode, i);
            }
        }
    }

    /// Identical schedules and seeds produce identical executions
    /// (end-to-end determinism through the full protocol stack).
    #[test]
    fn full_stack_determinism(
        ops in proptest::collection::vec(op_strategy(4, 8), 1..40),
        seed in 0u64..1000,
    ) {
        for mode in [GasMode::AgasNetwork, GasMode::AgasSoftware] {
            let (a, _) = run_schedule(mode, &ops, seed);
            let (b, _) = run_schedule(mode, &ops, seed);
            prop_assert_eq!(a.trace_hash(), b.trace_hash());
            prop_assert_eq!(a.now(), b.now());
            prop_assert_eq!(a.state.events.len(), b.state.events.len());
        }
    }
}

proptest! {
    /// GVA encode/decode round-trips for every legal field combination.
    #[test]
    fn gva_round_trip(
        home in 0u32..(1 << 16),
        class in 3u8..=30,
        seq_bits in any::<u64>(),
        off_bits in any::<u64>(),
    ) {
        let seq_max = 1u64 << (42 - class as u32);
        let seq = seq_bits % seq_max;
        let offset = off_bits % (1u64 << class);
        let g = agas::Gva::new(home, class, seq, offset);
        prop_assert_eq!(g.home(), home);
        prop_assert_eq!(g.class(), class);
        prop_assert_eq!(g.seq(), seq);
        prop_assert_eq!(g.offset(), offset);
        prop_assert_eq!(g.block_key(), g.block_base().0);
        prop_assert_eq!(g.block_base().offset(), 0);
        prop_assert_eq!(g.with_offset(offset).0, g.0);
        prop_assert!(!g.is_null());
    }

    /// Two GVAs share a block key iff they differ only in offset.
    #[test]
    fn gva_block_key_equivalence(
        home in 0u32..64,
        class in 3u8..=16,
        seq in 0u64..1024,
        off_a in any::<u64>(),
        off_b in any::<u64>(),
    ) {
        let a = agas::Gva::new(home, class, seq, off_a % (1 << class));
        let b = agas::Gva::new(home, class, seq, off_b % (1 << class));
        prop_assert_eq!(a.block_key(), b.block_key());
        let c = agas::Gva::new(home, class, (seq + 1) % (1 << (42 - class as u32)), 0);
        if c.seq() != a.seq() {
            prop_assert_ne!(a.block_key(), c.block_key());
        }
    }

    /// GlobalArray linear addressing always lands inside the right block.
    #[test]
    fn array_addressing_is_consistent(
        class in 6u8..=14,
        n_blocks in 1u64..32,
        byte_bits in any::<u64>(),
    ) {
        let arr = agas::GlobalArray {
            class,
            dist: agas::Distribution::Cyclic,
            blocks: (0..n_blocks).map(|i| agas::Gva::new((i % 4) as u32, class, i / 4, 0)).collect(),
        };
        let byte = byte_bits % arr.total_bytes();
        let gva = arr.at_byte(byte);
        let bs = arr.block_size();
        prop_assert_eq!(gva.block_base(), arr.block(byte / bs));
        prop_assert_eq!(gva.offset(), byte % bs);
        // chunks() tiles any range exactly.
        let len = (byte_bits >> 32) % (arr.total_bytes() - byte);
        if len > 0 {
            let chunks = arr.chunks(byte, len);
            prop_assert_eq!(chunks.iter().map(|&(_, l)| l).sum::<u64>(), len);
            for (g, l) in chunks {
                prop_assert!(g.offset() + l <= bs);
            }
        }
    }
}
