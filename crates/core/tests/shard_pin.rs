//! The golden trace pins, replayed on the sharded engine.
//!
//! `trace_pin.rs` pins the sequential `(trace_hash, now)` of five
//! workloads. The hashes fold every executed `(time, seq)` pair, so they
//! are a complete witness of execution order — and the sharded engine
//! contracts to reproduce that order bit-for-bit at any shard count. This
//! suite re-runs the same five scenarios on [`agas::SimWorld`] (the
//! `Send` twin of the integration `World`, with identical construction
//! defaults and protocol dispatch) sequentially *and* under shard counts
//! {1, 2, 4, 8}, asserting the very same golden constants.
//!
//! A pin failure here with a passing `trace_pin.rs` means the sharded
//! engine (or `SimWorld`) diverged from sequential execution; a failure in
//! both means the protocol itself moved.

use agas::migrate::migrate_block;
use agas::ops::{memamo, memget, memput};
use agas::{
    alloc_array, membership, Distribution, GasMode, GlobalArray, MemberState, OwnerCache, SimWorld,
};
use netsim::{AmoOp, Engine, LocalityId, NetConfig, OpId, ShardedEngine, Time};

/// Shard counts every scenario must reproduce its pin under. `None` is
/// the plain sequential engine (the control that ties this suite to
/// `trace_pin.rs`).
const GRID: [Option<usize>; 5] = [None, Some(1), Some(2), Some(4), Some(8)];

fn jittery() -> NetConfig {
    NetConfig {
        jitter_ns: 400,
        ..NetConfig::ideal()
    }
}

/// One workload harness: the same `SimWorld` program driven either by the
/// sequential engine or by the sharded one.
enum Harness {
    Seq(Engine<SimWorld>),
    Shard(ShardedEngine<SimWorld>),
}

impl Harness {
    fn new(n: usize, mode: GasMode, net: NetConfig, seed: u64, shards: Option<usize>) -> Harness {
        let world = SimWorld::new(n, mode, net);
        match shards {
            None => Harness::Seq(Engine::new(world, seed)),
            Some(k) => Harness::Shard(ShardedEngine::new(world, seed, k)),
        }
    }

    /// Driver-phase world access (between runs).
    fn world(&mut self) -> &mut SimWorld {
        match self {
            Harness::Seq(e) => &mut e.state,
            Harness::Shard(s) => s.state(),
        }
    }

    /// Issue driver code attributed to locality `loc` (op submissions,
    /// injected events).
    fn issue(&mut self, loc: LocalityId, f: impl FnOnce(&mut Engine<SimWorld>) + 'static) {
        match self {
            Harness::Seq(e) => f(e),
            Harness::Shard(s) => s.drive_at(loc, f),
        }
    }

    fn alloc(&mut self, blocks: u64, class: u8) -> GlobalArray {
        match self {
            Harness::Seq(e) => alloc_array(e, blocks, class, Distribution::Cyclic),
            Harness::Shard(s) => s.drive(|e| alloc_array(e, blocks, class, Distribution::Cyclic)),
        }
    }

    /// Driver-phase code that plans a global transition (the membership
    /// drivers): reads any locality, mutates only via scheduled events.
    fn drive(&mut self, f: impl FnOnce(&mut Engine<SimWorld>) + 'static) {
        match self {
            Harness::Seq(e) => f(e),
            Harness::Shard(s) => s.drive(f),
        }
    }

    fn run(&mut self) {
        match self {
            Harness::Seq(e) => e.run(),
            Harness::Shard(s) => s.run(),
        };
    }

    fn run_steps(&mut self, n: u64) {
        match self {
            Harness::Seq(e) => e.run_steps(n),
            Harness::Shard(s) => s.run_steps(n),
        };
    }

    fn finish(&mut self) -> (u64, u64) {
        self.run();
        match self {
            Harness::Seq(e) => (e.trace_hash(), e.now().ps()),
            Harness::Shard(s) => (s.trace_hash(), s.now().ps()),
        }
    }
}

fn check(name: &str, shards: Option<usize>, got: (u64, u64), want: (u64, u64)) {
    assert_eq!(
        got, want,
        "{name} (shards={shards:?}): pin moved — observed (hash, ps) = ({:#018x}, {})",
        got.0, got.1
    );
}

/// Remote puts + read-back on a jittery fabric (see `trace_pin.rs`).
fn jitter_puts(mode: GasMode, seed: u64, shards: Option<usize>) -> (u64, u64) {
    let mut h = Harness::new(3, mode, jittery(), seed, shards);
    let arr = h.alloc(4, 12);
    for i in 0..30u64 {
        let gva = arr.block(i % 4).with_offset((i / 4) * 16);
        let loc = (i % 3) as u32;
        h.issue(loc, move |eng| {
            memput(eng, loc, gva, vec![(i + 1) as u8; 16], OpId::from_raw(i));
        });
    }
    h.run();
    for i in 0..30u64 {
        let gva = arr.block(i % 4).with_offset((i / 4) * 16);
        let loc = ((i + 1) % 3) as u32;
        h.issue(loc, move |eng| {
            memget(eng, loc, gva, 16, OpId::from_raw(100 + i));
        });
    }
    h.finish()
}

/// Puts racing migrations under jitter.
fn migration_mix(mode: GasMode, shards: Option<usize>) -> (u64, u64) {
    let mut h = Harness::new(4, mode, jittery(), 11, shards);
    let arr = h.alloc(4, 12);
    for round in 0..6u64 {
        for b in 0..4u64 {
            let gva = arr.block(b).with_offset(round * 16);
            let loc = (b % 4) as u32;
            h.issue(loc, move |eng| {
                memput(
                    eng,
                    loc,
                    gva,
                    vec![(round * 4 + b + 1) as u8; 16],
                    OpId::from_raw(round * 4 + b),
                );
            });
            let mig = arr.block(b);
            h.issue(0, move |eng| {
                migrate_block(
                    eng,
                    0,
                    mig,
                    ((round + b) % 4) as u32,
                    OpId::from_raw(9000 + round * 4 + b),
                );
            });
        }
        h.run_steps(40);
    }
    h.finish()
}

/// The deadline-sweep fault scenario: locality 0 forgets its in-flight
/// wire ops and the sweep converts the silence into failures.
fn deadline_fault(seed: u64, shards: Option<usize>) -> (u64, u64) {
    let mut h = Harness::new(4, GasMode::AgasNetwork, jittery(), seed, shards);
    for g in &mut h.world().data.gas {
        g.cfg.op_deadline = Some(Time::from_us(40));
        g.cfg.sweep_interval = Time::from_us(5);
    }
    let arr = h.alloc(4, 12);
    for i in 0..8u64 {
        let gva = arr.block(i % 4).with_offset((i / 4) * 64);
        h.issue(0, move |eng| {
            memput(eng, 0, gva, vec![i as u8 + 1; 64], OpId::from_raw(i));
            memget(eng, 0, gva, 64, OpId::from_raw(100 + i));
        });
    }
    let (m1, m2) = (arr.block(1), arr.block(2));
    h.issue(1, move |eng| {
        migrate_block(eng, 1, m1, 3, OpId::from_raw(900));
    });
    h.issue(2, move |eng| {
        migrate_block(eng, 2, m2, 0, OpId::from_raw(901));
    });
    // The injected endpoint amnesia touches eps[0]: locality 0's event.
    h.issue(0, |eng| {
        eng.schedule(Time::from_ns(150), |eng| {
            eng.state.data.eps[0].drop_pending_ops();
        });
    });
    h.finish()
}

/// Capacity pressure: tiny NIC table + tiny owner caches.
fn capacity_pressure(shards: Option<usize>) -> (u64, u64) {
    let net = NetConfig {
        xlate_capacity: 4,
        ..NetConfig::ideal()
    };
    let mut h = Harness::new(4, GasMode::AgasNetwork, net, 17, shards);
    for g in &mut h.world().data.gas {
        g.cache = OwnerCache::new(3);
    }
    let arr = h.alloc(16, 12);
    for i in 0..120u64 {
        let gva = arr.block((i * 7) % 16).with_offset((i % 4) * 32);
        let loc = ((i + 1) % 4) as u32;
        h.issue(loc, move |eng| {
            memput(eng, loc, gva, vec![(i + 1) as u8; 32], OpId::from_raw(i));
        });
        if i % 11 == 10 {
            let mig = arr.block(i % 16);
            let loc = (i % 4) as u32;
            h.issue(loc, move |eng| {
                migrate_block(
                    eng,
                    loc,
                    mig,
                    ((i + 2) % 4) as u32,
                    OpId::from_raw(9000 + i),
                );
            });
        }
        h.run_steps(15);
    }
    for i in 0..60u64 {
        let gva = arr.block((i * 3) % 16);
        let loc = (i % 4) as u32;
        h.issue(loc, move |eng| {
            memget(eng, loc, gva, 32, OpId::from_raw(2000 + i));
        });
    }
    h.finish()
}

/// A NIC firmware reset mid-run: flush + miss-driven reinstall paths.
fn flush_recovery(shards: Option<usize>) -> (u64, u64) {
    let mut h = Harness::new(4, GasMode::AgasNetwork, NetConfig::ideal(), 23, shards);
    let arr = h.alloc(8, 12);
    for i in 0..60u64 {
        let gva = arr.block(i % 8).with_offset((i / 8) * 64);
        let loc = ((i + 1) % 4) as u32;
        h.issue(loc, move |eng| {
            memput(eng, loc, gva, vec![(i + 1) as u8; 64], OpId::from_raw(i));
        });
        if i == 30 {
            // Driver-phase firmware reset, between runs: plain state access.
            let cluster = &mut h.world().data.cluster;
            for l in 0..4u32 {
                cluster.loc_mut(l).nic.xlate.flush_live();
            }
        }
        h.run_steps(10);
    }
    h.finish()
}

/// NIC-executed AMOs racing migrations under jitter (see `trace_pin.rs`).
fn amo_mix(mode: GasMode, shards: Option<usize>) -> (u64, u64) {
    let mut h = Harness::new(4, mode, jittery(), 19, shards);
    let arr = h.alloc(4, 12);
    for i in 0..40u64 {
        let loc = (i % 4) as u32;
        let gva = arr.block(i % 4).with_offset((i % 8) * 8);
        h.issue(loc, move |eng| {
            memamo(
                eng,
                loc,
                gva,
                AmoOp::FetchAdd { operand: i + 1 },
                OpId::from_raw(i),
            );
        });
        if i % 5 == 4 {
            let cas = arr.block((i + 1) % 4);
            h.issue(loc, move |eng| {
                memamo(
                    eng,
                    loc,
                    cas,
                    AmoOp::CompareSwap {
                        expected: 0,
                        desired: i,
                    },
                    OpId::from_raw(500 + i),
                );
            });
        }
        if i % 7 == 6 {
            let sc = arr.block((i + 2) % 4);
            h.issue(loc, move |eng| {
                memamo(
                    eng,
                    loc,
                    sc,
                    AmoOp::Scatter {
                        writes: vec![(112, i), (120, i + 1)],
                    },
                    OpId::from_raw(700 + i),
                );
            });
        }
        if i % 16 == 8 && mode.supports_migration() {
            let mig = arr.block(i % 4);
            h.issue(loc, move |eng| {
                migrate_block(
                    eng,
                    loc,
                    mig,
                    ((i + 1) % 4) as u32,
                    OpId::from_raw(9000 + i),
                );
            });
        }
        h.run_steps(12);
    }
    for i in 0..16u64 {
        let loc = (i % 4) as u32;
        let gva = arr.block(i % 4);
        h.issue(loc, move |eng| {
            memamo(
                eng,
                loc,
                gva,
                AmoOp::Gather {
                    offsets: vec![0, 8, 16, 24],
                },
                OpId::from_raw(2000 + i),
            );
        });
    }
    h.finish()
}

/// The elastic membership ladder (see `trace_pin.rs::member_mix`): join,
/// drain, and — under the AGAS modes — crash + recovery, with every
/// transition a per-locality engine event so shard counts cannot reorder
/// it.
fn member_mix(mode: GasMode, shards: Option<usize>) -> (u64, u64) {
    let mut h = Harness::new(4, mode, jittery(), 29, shards);
    h.drive(|eng| membership::mark(eng, 3, MemberState::Joining));
    let arr = h.alloc(8, 12);
    for i in 0..24u64 {
        let gva = arr.block(i % 8).with_offset((i / 8) * 32);
        let loc = (i % 3) as u32;
        h.issue(loc, move |eng| {
            memput(eng, loc, gva, vec![(i + 1) as u8; 32], OpId::from_raw(i));
        });
        h.run_steps(10);
    }
    h.drive(|eng| membership::join(eng, 3, 0));
    for i in 0..24u64 {
        let gva = arr.block(i % 8).with_offset(64 + (i / 8) * 32);
        let loc = (i % 4) as u32;
        h.issue(loc, move |eng| {
            memput(
                eng,
                loc,
                gva,
                vec![(i + 101) as u8; 32],
                OpId::from_raw(100 + i),
            );
        });
        h.run_steps(10);
    }
    let drainee = if mode.supports_migration() { 2 } else { 3 };
    h.drive(move |eng| membership::drain(eng, drainee));
    for i in 0..16u64 {
        let gva = arr.block(i % 8);
        let loc = (i % 2) as u32;
        h.issue(loc, move |eng| {
            memget(eng, loc, gva, 32, OpId::from_raw(200 + i));
        });
        h.run_steps(10);
    }
    if mode.supports_migration() {
        h.run();
        let mig = arr.block(0);
        h.issue(0, move |eng| {
            migrate_block(eng, 0, mig, 1, OpId::from_raw(900));
        });
        h.run();
        h.drive(|eng| membership::crash(eng, 1));
        h.run_steps(64);
        for i in 0..8u64 {
            let gva = arr.block(i % 8);
            h.issue(0, move |eng| {
                memget(eng, 0, gva, 32, OpId::from_raw(300 + i));
            });
        }
    }
    h.finish()
}

#[test]
fn shard_pin_jitter_puts() {
    for shards in GRID {
        check(
            "jitter_puts/pgas",
            shards,
            jitter_puts(GasMode::Pgas, 7, shards),
            GOLDEN_JITTER_PGAS,
        );
        check(
            "jitter_puts/sw",
            shards,
            jitter_puts(GasMode::AgasSoftware, 7, shards),
            GOLDEN_JITTER_SW,
        );
        check(
            "jitter_puts/net",
            shards,
            jitter_puts(GasMode::AgasNetwork, 7, shards),
            GOLDEN_JITTER_NET,
        );
    }
}

#[test]
fn shard_pin_migration_mix() {
    for shards in GRID {
        check(
            "migration_mix/sw",
            shards,
            migration_mix(GasMode::AgasSoftware, shards),
            GOLDEN_MIG_SW,
        );
        check(
            "migration_mix/net",
            shards,
            migration_mix(GasMode::AgasNetwork, shards),
            GOLDEN_MIG_NET,
        );
    }
}

#[test]
fn shard_pin_deadline_fault() {
    for shards in GRID {
        check(
            "deadline_fault/11",
            shards,
            deadline_fault(11, shards),
            GOLDEN_DEADLINE_11,
        );
        check(
            "deadline_fault/23",
            shards,
            deadline_fault(23, shards),
            GOLDEN_DEADLINE_23,
        );
    }
}

#[test]
fn shard_pin_capacity_pressure() {
    for shards in GRID {
        check(
            "capacity_pressure",
            shards,
            capacity_pressure(shards),
            GOLDEN_CAPACITY,
        );
    }
}

#[test]
fn shard_pin_flush_recovery() {
    for shards in GRID {
        check(
            "flush_recovery",
            shards,
            flush_recovery(shards),
            GOLDEN_FLUSH,
        );
    }
}

#[test]
fn shard_pin_amo_mix() {
    for shards in GRID {
        check(
            "amo_mix/pgas",
            shards,
            amo_mix(GasMode::Pgas, shards),
            GOLDEN_AMO_PGAS,
        );
        check(
            "amo_mix/sw",
            shards,
            amo_mix(GasMode::AgasSoftware, shards),
            GOLDEN_AMO_SW,
        );
        check(
            "amo_mix/net",
            shards,
            amo_mix(GasMode::AgasNetwork, shards),
            GOLDEN_AMO_NET,
        );
    }
}

#[test]
fn shard_pin_member_mix() {
    for shards in GRID {
        check(
            "member_mix/pgas",
            shards,
            member_mix(GasMode::Pgas, shards),
            GOLDEN_MEMBER_PGAS,
        );
        check(
            "member_mix/sw",
            shards,
            member_mix(GasMode::AgasSoftware, shards),
            GOLDEN_MEMBER_SW,
        );
        check(
            "member_mix/net",
            shards,
            member_mix(GasMode::AgasNetwork, shards),
            GOLDEN_MEMBER_NET,
        );
    }
}

// The exact constants from `trace_pin.rs`: the sharded engine must land on
// the sequential hashes, not merely be self-consistent.
const GOLDEN_JITTER_PGAS: (u64, u64) = (0x3a1b_a271_08e7_3ff4, 2_155_000);
const GOLDEN_JITTER_SW: (u64, u64) = (0x7b1b_771a_2630_7d1b, 6_591_400);
const GOLDEN_JITTER_NET: (u64, u64) = (0x4a67_b315_e66f_9216, 2_165_000);
const GOLDEN_MIG_SW: (u64, u64) = (0x50aa_0c4b_27e6_6b7e, 109_546_200);
const GOLDEN_MIG_NET: (u64, u64) = (0x6829_dca1_979a_1fcd, 100_872_800);
const GOLDEN_DEADLINE_11: (u64, u64) = (0x7d82_ca5b_de6f_587d, 40_000_000);
const GOLDEN_DEADLINE_23: (u64, u64) = (0xe63a_b7da_7176_c2ea, 40_000_000);
const GOLDEN_CAPACITY: (u64, u64) = (0xfe4f_3eb2_0d05_710b, 165_756_600);
const GOLDEN_FLUSH: (u64, u64) = (0xf28f_56b0_057b_a14c, 21_260_000);
const GOLDEN_AMO_PGAS: (u64, u64) = (0x0c6b_7794_17b5_7bcc, 16_428_800);
const GOLDEN_AMO_SW: (u64, u64) = (0xd8c6_19aa_c5c3_b3e3, 38_448_400);
const GOLDEN_AMO_NET: (u64, u64) = (0xb4af_369e_0364_317d, 24_868_600);
const GOLDEN_MEMBER_PGAS: (u64, u64) = (0x5e47_706e_d8f4_81fb, 21_898_800);
const GOLDEN_MEMBER_SW: (u64, u64) = (0x8ab1_8722_e778_5b6f, 59_989_200);
const GOLDEN_MEMBER_NET: (u64, u64) = (0x93bf_22a4_bb30_2218, 47_268_200);
