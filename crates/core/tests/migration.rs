//! Protocol-level tests of block migration, including races with in-flight
//! traffic — the scenario the NIC forwarding tombstones exist for.

mod common;

use agas::migrate::migrate_block;
use agas::ops::{memget, memput, pin, unpin};
use agas::{alloc_array, Distribution, GasMode};
use common::{assert_consistent, engine, Ev, World};
use netsim::OpId;
use netsim::{Engine, NetConfig};

fn mig_done(eng: &Engine<World>, ctx: u64) -> bool {
    eng.state
        .events
        .iter()
        .any(|(_, _, e)| matches!(e, Ev::MigDone(c, _) if *c == ctx))
}

fn get_data(eng: &Engine<World>, ctx: u64) -> Option<Vec<u8>> {
    eng.state.events.iter().find_map(|(_, _, e)| match e {
        Ev::GetDone(c, d) if *c == ctx => Some(d.clone()),
        _ => None,
    })
}

#[test]
fn migration_preserves_data_and_consistency() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
        let gva = arr.block(1); // homed/owned at 1
        memput(&mut eng, 0, gva, vec![0xAB; 4096], OpId::from_raw(1));
        eng.run();
        migrate_block(&mut eng, 0, gva, 3, OpId::from_raw(2));
        eng.run();
        assert!(mig_done(&eng, 2), "{mode:?}");
        // New owner is 3; directory agrees; data intact.
        assert!(
            eng.state.gas[3].btt.is_resident(gva.block_key()),
            "{mode:?}"
        );
        assert!(
            !eng.state.gas[1].btt.is_resident(gva.block_key()),
            "{mode:?}"
        );
        assert_consistent(&eng, &arr.blocks);
        memget(&mut eng, 2, gva, 4096, OpId::from_raw(3));
        eng.run();
        assert_eq!(get_data(&eng, 3).unwrap(), vec![0xAB; 4096], "{mode:?}");
    }
}

#[test]
fn migration_bumps_generation() {
    let mut eng = engine(3, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 3, 10, Distribution::Cyclic);
    let gva = arr.block(0);
    migrate_block(&mut eng, 0, gva, 1, OpId::from_raw(1));
    eng.run();
    migrate_block(&mut eng, 0, gva, 2, OpId::from_raw(2));
    eng.run();
    migrate_block(&mut eng, 0, gva, 0, OpId::from_raw(3));
    eng.run();
    assert!(mig_done(&eng, 1) && mig_done(&eng, 2) && mig_done(&eng, 3));
    let e = eng.state.gas[0].btt.lookup(gva.block_key()).unwrap();
    assert_eq!(e.generation, 4); // 1 + three migrations
    assert_consistent(&eng, &arr.blocks);
}

#[test]
fn migrate_to_current_owner_is_trivial() {
    let mut eng = engine(3, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 3, 10, Distribution::Cyclic);
    migrate_block(&mut eng, 0, arr.block(1), 1, OpId::from_raw(9));
    eng.run();
    assert!(mig_done(&eng, 9));
    assert!(eng.state.gas[1].btt.is_resident(arr.block(1).block_key()));
    assert_eq!(eng.state.cluster.total_counters().migrations_out, 0);
}

#[test]
fn puts_racing_migration_are_applied_exactly_once() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 2, 14, Distribution::Cyclic); // 16 KiB blocks
        let gva = arr.block(1);
        // Launch 64 puts to distinct offsets and a migration mid-stream.
        for i in 0..32u64 {
            memput(
                &mut eng,
                0,
                gva.with_offset(i * 64),
                vec![(i + 1) as u8; 64],
                OpId::from_raw(i),
            );
        }
        migrate_block(&mut eng, 2, gva, 3, OpId::from_raw(1000));
        for i in 32..64u64 {
            memput(
                &mut eng,
                0,
                gva.with_offset(i * 64),
                vec![(i + 1) as u8; 64],
                OpId::from_raw(i),
            );
        }
        eng.run();
        assert!(mig_done(&eng, 1000), "{mode:?}");
        let puts_done = eng
            .state
            .events
            .iter()
            .filter(|(_, _, e)| matches!(e, Ev::PutDone(_)))
            .count();
        assert_eq!(puts_done, 64, "{mode:?}: lost put completions");
        // Every offset readable with its value at the new owner.
        for i in 0..64u64 {
            memget(
                &mut eng,
                1,
                gva.with_offset(i * 64),
                64,
                OpId::from_raw(2000 + i),
            );
            eng.run();
            assert_eq!(
                get_data(&eng, 2000 + i).unwrap(),
                vec![(i + 1) as u8; 64],
                "{mode:?}: offset {i} corrupted"
            );
        }
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn nic_forwarding_rescues_in_flight_puts() {
    // NET mode: verify the forwarding tombstone actually fires during the
    // migration window.
    let mut eng = engine(4, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 2, 20, Distribution::Cyclic); // 1 MiB block: long handoff
    let gva = arr.block(1);
    migrate_block(&mut eng, 1, gva, 2, OpId::from_raw(1));
    // While MigData is in flight, hit the old owner.
    for i in 0..8u64 {
        memput(
            &mut eng,
            0,
            gva.with_offset(i * 8),
            vec![i as u8 + 1; 8],
            OpId::from_raw(10 + i),
        );
    }
    eng.run();
    assert!(mig_done(&eng, 1));
    let total = eng.state.cluster.total_counters();
    assert!(
        total.xlate_forwards > 0 || total.nacks_sent > 0,
        "migration window never exercised"
    );
    for i in 0..8u64 {
        memget(
            &mut eng,
            3,
            gva.with_offset(i * 8),
            8,
            OpId::from_raw(100 + i),
        );
        eng.run();
        assert_eq!(get_data(&eng, 100 + i).unwrap(), vec![i as u8 + 1; 8]);
    }
}

#[test]
fn forwarding_disabled_still_converges_via_home() {
    // Ablation A3: NACK-only recovery.
    let net = NetConfig {
        nic_forwarding: false,
        ..NetConfig::ideal()
    };
    let mut eng = Engine::new(World::new(4, GasMode::AgasNetwork, net), 42);
    let arr = alloc_array(&mut eng, 2, 20, Distribution::Cyclic);
    let gva = arr.block(1);
    migrate_block(&mut eng, 1, gva, 2, OpId::from_raw(1));
    for i in 0..8u64 {
        memput(
            &mut eng,
            0,
            gva.with_offset(i * 8),
            vec![i as u8 + 1; 8],
            OpId::from_raw(10 + i),
        );
    }
    eng.run();
    assert!(mig_done(&eng, 1));
    let total = eng.state.cluster.total_counters();
    assert_eq!(total.xlate_forwards, 0);
    for i in 0..8u64 {
        memget(
            &mut eng,
            3,
            gva.with_offset(i * 8),
            8,
            OpId::from_raw(100 + i),
        );
        eng.run();
        assert_eq!(get_data(&eng, 100 + i).unwrap(), vec![i as u8 + 1; 8]);
    }
}

#[test]
fn pinned_block_defers_migration_until_unpin() {
    let mut eng = engine(3, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 3, 10, Distribution::Cyclic);
    let gva = arr.block(1);
    // Pin at the owner (as an executing handler would).
    assert!(pin(&mut eng.state, 1, gva).is_some());
    migrate_block(&mut eng, 0, gva, 2, OpId::from_raw(7));
    eng.run();
    assert!(!mig_done(&eng, 7), "migration must wait for the pin");
    assert!(eng.state.gas[1].btt.is_resident(gva.block_key()));
    unpin(&mut eng, 1, gva);
    eng.run();
    assert!(mig_done(&eng, 7));
    assert!(eng.state.gas[2].btt.is_resident(gva.block_key()));
    assert_consistent(&eng, &arr.blocks);
}

#[test]
fn stale_readers_after_migration_recover() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
        let gva = arr.block(2);
        memput(&mut eng, 0, gva, vec![0x5A; 128], OpId::from_raw(1));
        eng.run();
        // Locality 0 now caches owner=2. Migrate to 3 behind its back.
        migrate_block(&mut eng, 1, gva, 3, OpId::from_raw(2));
        eng.run();
        // The stale cache entry forces a bounce + directory re-resolve.
        memget(&mut eng, 0, gva, 128, OpId::from_raw(3));
        eng.run();
        assert_eq!(get_data(&eng, 3).unwrap(), vec![0x5A; 128], "{mode:?}");
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn migration_counters_track_moves() {
    let mut eng = engine(3, GasMode::AgasSoftware);
    let arr = alloc_array(&mut eng, 6, 10, Distribution::Cyclic);
    for (i, gva) in arr.blocks.iter().enumerate() {
        migrate_block(
            &mut eng,
            0,
            *gva,
            (gva.home() + 1) % 3,
            OpId::from_raw(i as u64),
        );
    }
    eng.run();
    let total = eng.state.cluster.total_counters();
    assert_eq!(total.migrations_out, 6);
    assert_eq!(total.migrations_in, 6);
    assert_consistent(&eng, &arr.blocks);
}

#[test]
fn forward_chains_of_depth_k_resolve_with_exactly_k_hops() {
    // Build a k-deep NIC forwarding chain (the block hops 1 → 2 → … → 1+k
    // while locality 0 keeps its original owner hint) and verify a single
    // stale get traverses exactly k Forward tombstones before committing.
    for k in 0..=4usize {
        let net = NetConfig {
            forward_ttl: 5, // chain depth 4 needs ttl ≥ 4 to avoid NACKs
            ..NetConfig::ideal()
        };
        let mut eng = Engine::new(World::new(6, GasMode::AgasNetwork, net), 42);
        let arr = alloc_array(&mut eng, 6, 12, Distribution::Cyclic);
        let gva = arr.block(1); // homed and initially owned at 1
        memput(&mut eng, 0, gva, vec![0x77; 64], OpId::from_raw(1));
        eng.run(); // locality 0 now caches owner = 1
        for i in 0..k {
            migrate_block(
                &mut eng,
                1,
                gva,
                2 + i as u32,
                OpId::from_raw(10 + i as u64),
            );
            eng.run();
            assert!(mig_done(&eng, 10 + i as u64), "k={k} hop {i}");
        }
        let before = eng.state.cluster.total_counters().xlate_forwards;
        memget(&mut eng, 0, gva, 64, OpId::from_raw(99));
        eng.run();
        assert_eq!(get_data(&eng, 99).unwrap(), vec![0x77; 64], "k={k}");
        let forwards = eng.state.cluster.total_counters().xlate_forwards - before;
        assert_eq!(forwards, k as u64, "k={k}: wrong forwarding-chain depth");
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn expired_forward_tombstone_recovers_via_directory() {
    // Ghost-slot expiry: the old owner reclaimed its Forward tombstone
    // (capacity pressure) before a stale reader arrived. The reader must
    // get a Miss NACK and recover through the home directory.
    let mut eng = engine(4, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    let gva = arr.block(1);
    memput(&mut eng, 0, gva, vec![0x3C; 32], OpId::from_raw(1));
    eng.run();
    migrate_block(&mut eng, 1, gva, 2, OpId::from_raw(2));
    eng.run();
    assert!(mig_done(&eng, 2));
    assert!(
        eng.state
            .cluster
            .loc_mut(1)
            .nic
            .xlate
            .expire_forward(gva.block_key()),
        "old owner should hold a live tombstone"
    );
    let nacks_before = eng.state.cluster.total_counters().nacks_sent;
    let retries_before = eng.state.gas[0].stats.retries;
    memget(&mut eng, 0, gva, 32, OpId::from_raw(3)); // stale hint → locality 1
    eng.run();
    assert_eq!(get_data(&eng, 3).unwrap(), vec![0x3C; 32]);
    assert!(
        eng.state.cluster.total_counters().nacks_sent > nacks_before,
        "expired tombstone must NACK rather than forward"
    );
    assert!(
        eng.state.gas[0].stats.retries > retries_before,
        "recovery must go through the bounce path"
    );
    assert_consistent(&eng, &arr.blocks);
}

#[test]
fn get_racing_a_second_migration_returns_fresh_data() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 2, 16, Distribution::Cyclic); // 64 KiB: long handoff
        let gva = arr.block(1);
        memput(&mut eng, 0, gva, vec![0x9D; 256], OpId::from_raw(1));
        eng.run();
        // First migration; a get and a *second* migration are injected while
        // the first handoff is still in flight.
        migrate_block(&mut eng, 0, gva, 2, OpId::from_raw(2));
        eng.run_steps(30);
        memget(&mut eng, 3, gva, 256, OpId::from_raw(3));
        migrate_block(&mut eng, 0, gva, 1, OpId::from_raw(4));
        eng.run();
        assert!(mig_done(&eng, 2) && mig_done(&eng, 4), "{mode:?}");
        assert_eq!(get_data(&eng, 3).unwrap(), vec![0x9D; 256], "{mode:?}");
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn concurrent_migrations_of_same_block_serialize() {
    let mut eng = engine(4, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 2, 12, Distribution::Cyclic);
    let gva = arr.block(1);
    migrate_block(&mut eng, 0, gva, 2, OpId::from_raw(1));
    migrate_block(&mut eng, 0, gva, 3, OpId::from_raw(2));
    migrate_block(&mut eng, 2, gva, 0, OpId::from_raw(3));
    eng.run();
    assert!(mig_done(&eng, 1) && mig_done(&eng, 2) && mig_done(&eng, 3));
    assert_consistent(&eng, &arr.blocks);
    // Exactly one resident copy somewhere.
    let owners = (0..4)
        .filter(|&l| eng.state.gas[l as usize].btt.is_resident(gva.block_key()))
        .count();
    assert_eq!(owners, 1);
}
