//! Protocol-level tests of the shared-memory domain short-circuit: puts,
//! gets, and AMOs between co-located localities pay load/store costs and
//! send **zero wire messages**, while cross-domain ops (and co-located
//! ops with rings, after a migration race) still behave exactly like the
//! network path.

mod common;

use agas::ops::{memamo, memget, memput};
use agas::{alloc_array, Distribution, GasMode};
use common::{assert_consistent, Ev, World};
use netsim::{AmoOp, AmoResult, Engine, NetConfig, OpId, ShmDomain, Time};

/// Four localities, two shm domains: {0,1} and {2,3}.
fn shm_engine(mode: GasMode) -> Engine<World> {
    let net = NetConfig {
        shm: Some(ShmDomain::node(2)),
        ..NetConfig::ideal()
    };
    Engine::new(World::new(4, mode, net), 42)
}

fn get_data(eng: &Engine<World>, ctx: u64) -> Option<Vec<u8>> {
    eng.state.events.iter().find_map(|(_, _, e)| match e {
        Ev::GetDone(c, d) if *c == ctx => Some(d.clone()),
        _ => None,
    })
}

fn amo_result(eng: &Engine<World>, ctx: u64) -> Option<AmoResult> {
    eng.state.events.iter().find_map(|(_, _, e)| match e {
        Ev::AmoDone(c, r) if *c == ctx => Some(r.clone()),
        _ => None,
    })
}

fn wire_messages(eng: &Engine<World>) -> u64 {
    let c = eng.state.cluster.total_counters();
    c.msgs_sent + c.rdma_puts + c.rdma_gets
}

#[test]
fn intra_domain_ops_send_zero_messages() {
    for mode in GasMode::ALL {
        let mut eng = shm_engine(mode);
        let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
        // Block 1 is homed at locality 1 — locality 0's domain partner.
        let gva = arr.block(1).with_offset(128);
        memput(&mut eng, 0, gva, vec![0xAB; 64], OpId::from_raw(1));
        eng.run();
        memget(&mut eng, 0, gva, 64, OpId::from_raw(2));
        eng.run();
        assert_eq!(
            get_data(&eng, 2).unwrap(),
            vec![0xAB; 64],
            "{mode:?}: shm data corrupt"
        );
        memamo(
            &mut eng,
            0,
            arr.block(1),
            AmoOp::FetchAdd { operand: 9 },
            OpId::from_raw(3),
        );
        eng.run();
        assert_eq!(amo_result(&eng, 3).unwrap().old, 0, "{mode:?}");
        assert_eq!(wire_messages(&eng), 0, "{mode:?}: shm ops hit the wire");
        let g = &eng.state.gas[0];
        assert_eq!(g.stats.shm_ops, 3, "{mode:?}: ops missed the shm path");
        assert_eq!(g.stats.shm_bytes, 64 + 64 + 8, "{mode:?}");
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn cross_domain_ops_still_ride_the_fabric() {
    for mode in GasMode::ALL {
        let mut eng = shm_engine(mode);
        let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
        // Block 2 is homed at locality 2 — the *other* domain.
        let gva = arr.block(2).with_offset(32);
        memput(&mut eng, 0, gva, vec![0x5A; 32], OpId::from_raw(1));
        eng.run();
        memget(&mut eng, 0, gva, 32, OpId::from_raw(2));
        eng.run();
        assert_eq!(get_data(&eng, 2).unwrap(), vec![0x5A; 32], "{mode:?}");
        assert!(
            wire_messages(&eng) > 0,
            "{mode:?}: cross-domain op skipped the fabric"
        );
        assert_eq!(eng.state.gas[0].stats.shm_ops, 0, "{mode:?}");
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn local_ops_bypass_the_domain_accounting() {
    // Initiator == home stays on the plain local fast path — the domain
    // short-circuit only covers *distinct* co-located localities.
    let mut eng = shm_engine(GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
    memput(&mut eng, 0, arr.block(0), vec![3; 16], OpId::from_raw(1));
    eng.run();
    let g = &eng.state.gas[0];
    assert_eq!(g.stats.local_ops, 1);
    assert_eq!(g.stats.shm_ops, 0);
    assert_eq!(wire_messages(&eng), 0);
}

#[test]
fn shm_amos_serialize_against_each_other() {
    // Both members of domain {0,1} hammer one word homed at locality 1;
    // the commits all run on the home's lane, so the final count is exact.
    let mut eng = shm_engine(GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    let hot = arr.block(1);
    for i in 0..32u64 {
        memamo(
            &mut eng,
            (i % 2) as u32,
            hot,
            AmoOp::FetchAdd { operand: 1 },
            OpId::from_raw(i),
        );
    }
    eng.run();
    memamo(
        &mut eng,
        1,
        hot,
        AmoOp::FetchAdd { operand: 0 },
        OpId::from_raw(500),
    );
    eng.run();
    assert_eq!(amo_result(&eng, 500).unwrap().old, 32);
    // Locality 1's 16 AMOs + the read-back are local; locality 0's 16
    // took the shm path. Nothing touched the wire.
    assert_eq!(eng.state.gas[0].stats.shm_ops, 16);
    assert_eq!(wire_messages(&eng), 0);
}

#[test]
fn shm_access_beats_the_wire() {
    // The same put, A/B: inside a domain vs. over the (ideal) fabric.
    let timed_put = |net: NetConfig| {
        let mut eng = Engine::new(World::new(4, GasMode::AgasNetwork, net), 42);
        let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
        let t0 = eng.now();
        memput(&mut eng, 0, arr.block(1), vec![1; 256], OpId::from_raw(1));
        eng.run();
        let done = eng
            .state
            .events
            .iter()
            .find(|(_, _, e)| matches!(e, Ev::PutDone(1)))
            .map(|(t, _, _)| *t)
            .expect("put incomplete");
        done - t0
    };
    let wire = timed_put(NetConfig::ib_fdr());
    let shm = timed_put(NetConfig {
        shm: Some(ShmDomain::node(2)),
        ..NetConfig::ib_fdr()
    });
    assert!(
        shm < wire,
        "shm put ({shm}) not faster than the wire ({wire})"
    );
    assert!(
        shm < Time::from_us(1),
        "load/store model should land well under a microsecond, got {shm}"
    );
}
