//! Migration control traffic through per-peer descriptor rings
//! ([`agas::GasConfig::ctrl_ring`]): batching correctness, the timer-only
//! flush path, and the schedule-equivalence of a batch-of-one ring.

mod common;

use agas::migrate::{free_block, migrate_block};
use agas::ops::{memget, memput};
use agas::{alloc_array, Distribution, GasConfig, GasLocal, GasMode};
use common::{assert_consistent, Ev, World};
use netsim::{AdaptiveRing, Engine, NetConfig, OpId, RingConfig, Time};

/// Build an engine whose GAS layer posts control traffic through rings.
fn ring_engine(n: usize, mode: GasMode, ring: RingConfig) -> Engine<World> {
    let mut w = World::new(n, mode, NetConfig::ideal());
    let cfg = GasConfig {
        ctrl_ring: Some(ring),
        ..GasConfig::default()
    };
    w.gas = (0..n).map(|_| GasLocal::new(cfg)).collect();
    Engine::new(w, 42)
}

fn mig_done(eng: &Engine<World>, ctx: u64) -> bool {
    eng.state
        .events
        .iter()
        .any(|(_, _, e)| matches!(e, Ev::MigDone(c, _) if *c == ctx))
}

#[test]
fn ctrl_ring_batches_migration_traffic_and_converges() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let before = netsim::telemetry::snapshot();
        let ring = RingConfig {
            doorbell_batch: 4,
            doorbell_delay: Time::from_ns(300),
            adaptive: Some(AdaptiveRing::default()),
            ..RingConfig::default()
        };
        let mut eng = ring_engine(3, mode, ring);
        let arr = alloc_array(&mut eng, 6, 10, Distribution::Cyclic);
        memput(
            &mut eng,
            0,
            arr.block(2),
            vec![0x6E; 64],
            OpId::from_raw(500),
        );
        eng.run();
        for (i, gva) in arr.blocks.iter().enumerate() {
            migrate_block(
                &mut eng,
                0,
                *gva,
                (gva.home() + 1) % 3,
                OpId::from_raw(i as u64),
            );
        }
        eng.run();
        for i in 0..6 {
            assert!(mig_done(&eng, i), "{mode:?}: migration {i} never finished");
        }
        let total = eng.state.cluster.total_counters();
        assert_eq!(total.migrations_out, 6, "{mode:?}");
        // Data survived the ring-batched protocol.
        memget(&mut eng, 1, arr.block(2), 64, OpId::from_raw(600));
        eng.run();
        assert!(
            eng.state
                .events
                .iter()
                .any(|(_, _, e)| matches!(e, Ev::GetDone(600, d) if d == &vec![0x6E; 64])),
            "{mode:?}"
        );
        assert_consistent(&eng, &arr.blocks);
        // Every control message went through the ring.
        let descs = netsim::telemetry::snapshot()
            .since(before)
            .migration_ring_descs;
        assert!(
            descs >= 6,
            "{mode:?}: only {descs} control descriptors rode the ring"
        );
    }
}

#[test]
fn ctrl_ring_timer_flushes_a_lone_request() {
    // One migration with a deep batch threshold: nothing ever fills the
    // ring, so completion depends entirely on the doorbell timer.
    let ring = RingConfig {
        doorbell_batch: 64,
        doorbell_delay: Time::from_ns(500),
        ..RingConfig::default()
    };
    let mut eng = ring_engine(3, GasMode::AgasNetwork, ring);
    let arr = alloc_array(&mut eng, 3, 10, Distribution::Cyclic);
    migrate_block(&mut eng, 0, arr.block(1), 2, OpId::from_raw(7));
    eng.run();
    assert!(mig_done(&eng, 7), "timer flush never fired");
    assert!(eng.state.gas[2].btt.is_resident(arr.block(1).block_key()));
    assert_consistent(&eng, &arr.blocks);
}

#[test]
fn ctrl_ring_free_protocol_converges() {
    let ring = RingConfig {
        doorbell_batch: 3,
        doorbell_delay: Time::from_ns(400),
        ..RingConfig::default()
    };
    let mut eng = ring_engine(3, GasMode::AgasSoftware, ring);
    let arr = alloc_array(&mut eng, 4, 10, Distribution::Cyclic);
    for (i, gva) in arr.blocks.iter().enumerate() {
        free_block(&mut eng, 0, *gva, OpId::from_raw(40 + i as u64));
    }
    eng.run();
    for i in 0..4u64 {
        assert!(
            eng.state
                .events
                .iter()
                .any(|(_, _, e)| matches!(e, Ev::FreeDone(c, _) if *c == 40 + i)),
            "free {i} never completed"
        );
    }
}

#[test]
fn batch_of_one_ring_matches_the_direct_schedule() {
    // A ring that flushes on every push is the ad-hoc send in disguise:
    // each control message hits the wire synchronously, in the same event,
    // at the same time — so the full `(time, seq)` trace is bit-identical
    // to running with `ctrl_ring: None`.
    let run = |ring: Option<RingConfig>| {
        let mut w = World::new(4, GasMode::AgasNetwork, NetConfig::ideal());
        let cfg = GasConfig {
            ctrl_ring: ring,
            ..GasConfig::default()
        };
        w.gas = (0..4).map(|_| GasLocal::new(cfg)).collect();
        let mut eng = Engine::new(w, 42);
        let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
        memput(
            &mut eng,
            0,
            arr.block(1),
            vec![0xAB; 128],
            OpId::from_raw(1),
        );
        eng.run();
        migrate_block(&mut eng, 0, arr.block(1), 3, OpId::from_raw(2));
        eng.run();
        migrate_block(&mut eng, 2, arr.block(3), 0, OpId::from_raw(3));
        eng.run();
        free_block(&mut eng, 1, arr.block(2), OpId::from_raw(4));
        eng.run();
        eng.trace_hash()
    };
    let direct = run(None);
    let ringed = run(Some(RingConfig {
        doorbell_batch: 1,
        ..RingConfig::default()
    }));
    assert_eq!(direct, ringed, "batch-of-one ring perturbed the schedule");
}
