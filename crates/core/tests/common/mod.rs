//! A minimal world embedding cluster + photon + gas, shared by the
//! protocol-level integration tests.

use agas::{GasConfig, GasLocal, GasMode, GasMsg, GasWorld, PgasMap};
use netsim::{
    AmoResult, Cluster, Engine, Envelope, LocalityId, NackReason, NetConfig, OpError, OpId, OpKind,
    Packet, Protocol, ServerPool, Time,
};
use photon::{PhotonConfig, PhotonEndpoint, PhotonMsg, PhotonWorld};

#[derive(Debug)]
pub enum Msg {
    Photon(PhotonMsg),
    Gas(GasMsg),
}

#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::enum_variant_names)]
pub enum Ev {
    PutDone(u64),
    GetDone(u64, Vec<u8>),
    MigDone(u64, u64),
    FreeDone(u64, u64),
    /// An active operation completed: `(ctx bits, NIC-reported result)`.
    AmoDone(u64, AmoResult),
    /// A terminal op failure: `(ctx bits, rendered OpError)`.
    OpFailed(u64, String),
}

pub struct World {
    pub cluster: Cluster,
    pub eps: Vec<PhotonEndpoint>,
    pub gas: Vec<GasLocal>,
    pub cpus: Vec<ServerPool>,
    pub pgas: PgasMap,
    pub mode: GasMode,
    pub events: Vec<(Time, LocalityId, Ev)>,
}

impl World {
    pub fn new(n: usize, mode: GasMode, net: NetConfig) -> World {
        World {
            cluster: Cluster::new(n, net, 1 << 28),
            eps: (0..n)
                .map(|_| PhotonEndpoint::new(PhotonConfig::default()))
                .collect(),
            gas: (0..n)
                .map(|_| GasLocal::new(GasConfig::default()))
                .collect(),
            cpus: (0..n).map(|_| ServerPool::new(2)).collect(),
            pgas: PgasMap::new(),
            mode,
            events: Vec::new(),
        }
    }
}

impl Protocol for World {
    type Msg = Msg;
    fn cluster(&mut self) -> &mut Cluster {
        &mut self.cluster
    }
    fn cluster_ref(&self) -> &Cluster {
        &self.cluster
    }
    fn deliver(eng: &mut Engine<Self>, env: Envelope<Msg>) {
        match env.packet {
            Packet::User(Msg::Photon(p)) => photon::handle_msg(eng, env.src, env.dst, p),
            Packet::User(Msg::Gas(g)) => agas::ops::handle_msg(eng, env.src, env.dst, g),
            other => photon::handle_completion(eng, env.src, env.dst, other),
        }
    }
}

impl PhotonWorld for World {
    fn endpoint(&mut self, loc: LocalityId) -> &mut PhotonEndpoint {
        &mut self.eps[loc as usize]
    }
    fn wrap(msg: PhotonMsg) -> Msg {
        Msg::Photon(msg)
    }
    fn pwc_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId) {
        agas::ops::on_pwc_complete(eng, loc, ctx);
    }
    fn pwc_remote(_eng: &mut Engine<Self>, _loc: LocalityId, _tag: u64, _len: u32) {}
    fn pwc_failed(
        eng: &mut Engine<Self>,
        loc: LocalityId,
        ctx: OpId,
        kind: OpKind,
        reason: NackReason,
        block: u64,
    ) {
        agas::ops::on_pwc_failed(eng, loc, ctx, kind, reason, block);
    }
    fn recv_complete(
        _eng: &mut Engine<Self>,
        _loc: LocalityId,
        _src: LocalityId,
        _tag: u64,
        _data: Vec<u8>,
    ) {
    }
    fn send_complete(_eng: &mut Engine<Self>, _loc: LocalityId, _send_id: u64) {}
    fn xlate_miss_local(eng: &mut Engine<Self>, loc: LocalityId, block: u64) {
        agas::ops::on_xlate_miss(eng, loc, block);
    }
    fn pwc_amo_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, result: AmoResult) {
        agas::ops::on_pwc_amo_complete(eng, loc, ctx, result);
    }
}

impl GasWorld for World {
    fn gas(&mut self, loc: LocalityId) -> &mut GasLocal {
        &mut self.gas[loc as usize]
    }
    fn gas_ref(&self, loc: LocalityId) -> &GasLocal {
        &self.gas[loc as usize]
    }
    fn gas_mode(&self) -> GasMode {
        self.mode
    }
    fn pgas(&mut self) -> &mut PgasMap {
        &mut self.pgas
    }
    fn cpu(&mut self, loc: LocalityId) -> &mut ServerPool {
        &mut self.cpus[loc as usize]
    }
    fn wrap_gas(msg: GasMsg) -> Msg {
        Msg::Gas(msg)
    }
    fn gas_put_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId) {
        let now = eng.now();
        eng.state.events.push((now, loc, Ev::PutDone(ctx.raw())));
    }
    fn gas_get_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, data: Vec<u8>) {
        let now = eng.now();
        eng.state
            .events
            .push((now, loc, Ev::GetDone(ctx.raw(), data)));
    }
    fn gas_migrate_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, block: u64) {
        let now = eng.now();
        eng.state
            .events
            .push((now, loc, Ev::MigDone(ctx.raw(), block)));
    }
    fn gas_free_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, block: u64) {
        let now = eng.now();
        eng.state
            .events
            .push((now, loc, Ev::FreeDone(ctx.raw(), block)));
    }
    fn gas_amo_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, result: AmoResult) {
        let now = eng.now();
        eng.state
            .events
            .push((now, loc, Ev::AmoDone(ctx.raw(), result)));
    }
    fn gas_op_failed(
        eng: &mut Engine<Self>,
        loc: LocalityId,
        ctx: OpId,
        _gva: agas::Gva,
        err: OpError,
    ) {
        let now = eng.now();
        eng.state
            .events
            .push((now, loc, Ev::OpFailed(ctx.raw(), err.to_string())));
    }
}

#[allow(dead_code)] // not every integration-test binary calls it
pub fn engine(n: usize, mode: GasMode) -> Engine<World> {
    Engine::new(World::new(n, mode, NetConfig::ideal()), 42)
}

/// Assert cluster-wide GAS consistency (delegates to the library's
/// checker, `agas::check`).
#[allow(dead_code)] // not every integration-test binary calls it
pub fn assert_consistent(eng: &Engine<World>, blocks: &[agas::Gva]) {
    agas::check::assert_consistent(&eng.state, blocks);
}
