//! Runtime block-free protocol tests.

mod common;

use agas::migrate::{free_block, migrate_block};
use agas::ops::{memput, pin, unpin};
use agas::{alloc_array, Distribution, GasMode};
use common::{engine, Ev};
use netsim::OpId;

fn free_done(eng: &netsim::Engine<common::World>, ctx: u64) -> bool {
    eng.state
        .events
        .iter()
        .any(|(_, _, e)| matches!(e, Ev::FreeDone(c, _) if *c == ctx))
}

#[test]
fn free_releases_storage_and_records() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut eng = engine(3, mode);
        let arr = alloc_array(&mut eng, 3, 12, Distribution::Cyclic);
        let gva = arr.block(1);
        memput(&mut eng, 0, gva, vec![1; 64], OpId::from_raw(1));
        eng.run();
        let live_before = eng.state.cluster.mem(1).live_blocks();
        free_block(&mut eng, 0, gva, OpId::from_raw(2));
        eng.run();
        assert!(free_done(&eng, 2), "{mode:?}");
        assert_eq!(eng.state.cluster.mem(1).live_blocks(), live_before - 1);
        assert!(
            !eng.state.gas[1].btt.is_resident(gva.block_key()),
            "{mode:?}"
        );
        assert!(
            eng.state.gas[1].dir.peek(gva.block_key()).is_none(),
            "{mode:?}"
        );
        if mode == GasMode::AgasNetwork {
            assert!(eng
                .state
                .cluster
                .loc(1)
                .nic
                .xlate
                .peek(gva.block_key())
                .is_none());
        }
    }
}

#[test]
fn free_chases_migrated_block() {
    let mut eng = engine(4, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    let gva = arr.block(1);
    migrate_block(&mut eng, 0, gva, 3, OpId::from_raw(1));
    eng.run();
    // The requester's cache still says locality 1; the free routes through
    // the home to the true owner (3).
    free_block(&mut eng, 0, gva, OpId::from_raw(2));
    eng.run();
    assert!(free_done(&eng, 2));
    assert!(!eng.state.gas[3].btt.is_resident(gva.block_key()));
    assert!(eng.state.gas[1].dir.peek(gva.block_key()).is_none());
}

#[test]
fn free_waits_for_pins() {
    let mut eng = engine(3, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 3, 12, Distribution::Cyclic);
    let gva = arr.block(1);
    assert!(pin(&mut eng.state, 1, gva).is_some());
    free_block(&mut eng, 0, gva, OpId::from_raw(9));
    eng.run();
    assert!(!free_done(&eng, 9), "free must wait for the pin");
    assert!(eng.state.gas[1].btt.is_resident(gva.block_key()));
    unpin(&mut eng, 1, gva);
    eng.run();
    assert!(free_done(&eng, 9));
    assert!(!eng.state.gas[1].btt.is_resident(gva.block_key()));
}

#[test]
fn free_racing_migration_converges() {
    let mut eng = engine(4, GasMode::AgasSoftware);
    let arr = alloc_array(&mut eng, 2, 16, Distribution::Cyclic);
    let gva = arr.block(1);
    migrate_block(&mut eng, 0, gva, 2, OpId::from_raw(1));
    // Issue the free while the hand-off is still in flight.
    free_block(&mut eng, 3, gva, OpId::from_raw(2));
    eng.run();
    assert!(free_done(&eng, 2));
    for l in 0..4 {
        assert!(!eng.state.gas[l].btt.is_resident(gva.block_key()));
    }
}

#[test]
fn arena_storage_is_reusable_after_free() {
    let mut eng = engine(2, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 2, 12, Distribution::Cyclic);
    free_block(&mut eng, 0, arr.block(1), OpId::from_raw(1));
    eng.run();
    assert!(free_done(&eng, 1));
    // A fresh allocation at the same locality reuses the slot.
    let arr2 = alloc_array(&mut eng, 2, 12, Distribution::Cyclic);
    memput(&mut eng, 0, arr2.block(1), vec![7; 16], OpId::from_raw(2));
    eng.run();
    assert!(eng
        .state
        .events
        .iter()
        .any(|(_, _, e)| matches!(e, Ev::PutDone(2))));
}
