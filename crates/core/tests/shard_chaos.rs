//! The chaos matrix, replayed under the sharded engine.
//!
//! Each cell drives the slot-idempotent chaos workload (per-locality slot
//! writes, audited cross-locality reads, migration churn) over a faulty
//! fabric — drops, duplicates, corruption, delay spikes, link flaps,
//! partitions — once on the sequential engine and once sharded. The gate
//! is twofold:
//!
//! * **correctness**: no structural or serializability violations, every
//!   op accounted (completed or failed cleanly), zero data mismatches —
//!   under *both* engines;
//! * **equivalence**: the sharded run's trace hash, clock, event count,
//!   completion/failure counters, recovery counters (deadline retries),
//!   outcome rollups, network counters, and fault-injection stats are all
//!   bit-identical to the sequential run's.
//!
//! Parcel-spawning cells are out of scope: the parcel runtime's world is
//! `Rc`-based and intentionally not [`SplitWorld`].

use agas::check::Violation;
use agas::ops::{memget, memput};
use agas::{
    alloc_array, migrate::migrate_block, Distribution, GasMode, GasStats, GlobalArray, Gva,
    SimWorld,
};
use netsim::rng::mix64;
use netsim::{
    Counters, Engine, FaultPlan, FaultPlane, FaultRates, FaultStats, LinkFlap, LocalityId,
    NetConfig, OpId, OutcomeCounters, Partition, ShardedEngine, Time,
};

const LOCALITIES: usize = 4;
const BLOCKS: u64 = 8;
const ROUNDS: u64 = 14;
const CHURN: u64 = 4;

/// The single legal non-zero value of `(block, slot)`.
fn slot_value(block: u64, slot: u32) -> u64 {
    mix64(0xC0A5_u64 ^ (block << 8) ^ slot as u64)
}

/// Byte offset of locality `slot`'s private slot inside each block.
fn slot_offset(slot: u32) -> u64 {
    64 + slot as u64 * 8
}

fn drop_mix(seed: u64, p: f64) -> FaultPlan {
    FaultPlan {
        seed,
        rates: FaultRates {
            drop: p,
            dup: p / 2.0,
            corrupt: 0.0,
            delay_p: p,
            delay_min_ns: 200,
            delay_max_ns: 4_000,
        },
        link_rates: Vec::new(),
        flaps: Vec::new(),
        partitions: Vec::new(),
    }
}

fn corrupt_mix(seed: u64, p: f64) -> FaultPlan {
    FaultPlan {
        seed,
        rates: FaultRates {
            drop: 0.0,
            dup: p / 2.0,
            corrupt: p,
            delay_p: p,
            delay_min_ns: 200,
            delay_max_ns: 4_000,
        },
        link_rates: Vec::new(),
        flaps: Vec::new(),
        partitions: Vec::new(),
    }
}

fn flap_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        flaps: vec![LinkFlap {
            src: 0,
            dst: 1,
            from: Time::from_us(5),
            to: Time::from_us(150),
        }],
        ..FaultPlan::lossless(seed)
    }
}

fn partition_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        partitions: vec![Partition {
            from: Time::from_us(10),
            to: Time::from_us(160),
            group_a: vec![0, 1],
        }],
        ..FaultPlan::lossless(seed)
    }
}

enum Harness {
    Seq(Engine<SimWorld>),
    Shard(ShardedEngine<SimWorld>),
}

impl Harness {
    fn world(&mut self) -> &mut SimWorld {
        match self {
            Harness::Seq(e) => &mut e.state,
            Harness::Shard(s) => s.state(),
        }
    }
    fn issue(&mut self, loc: LocalityId, f: impl FnOnce(&mut Engine<SimWorld>) + 'static) {
        match self {
            Harness::Seq(e) => f(e),
            Harness::Shard(s) => s.drive_at(loc, f),
        }
    }
    fn run_steps(&mut self, n: u64) {
        match self {
            Harness::Seq(e) => e.run_steps(n),
            Harness::Shard(s) => s.run_steps(n),
        };
    }
    fn run(&mut self) {
        match self {
            Harness::Seq(e) => e.run(),
            Harness::Shard(s) => s.run(),
        };
    }
    fn hash_now_events(&self) -> (u64, u64, u64) {
        match self {
            Harness::Seq(e) => (e.trace_hash(), e.now().ps(), e.events_executed()),
            Harness::Shard(s) => (s.trace_hash(), s.now().ps(), s.events_executed()),
        }
    }
}

/// Everything a cell asserts on — and everything that must match between
/// the sequential and sharded runs.
#[derive(Debug, Clone, PartialEq)]
struct Report {
    trace_hash: u64,
    end_ps: u64,
    events: u64,
    puts_issued: u64,
    gets_issued: u64,
    migrations_issued: u64,
    put_acks: u64,
    get_acks: u64,
    migration_acks: u64,
    op_failures: u64,
    data_mismatches: u64,
    gas: GasStats,
    outcomes: OutcomeCounters,
    net: Counters,
    faults: FaultStats,
    violations: Vec<Violation>,
}

impl Report {
    fn issued(&self) -> u64 {
        self.puts_issued + self.gets_issued + self.migrations_issued
    }
    fn acked(&self) -> u64 {
        self.put_acks + self.get_acks + self.migration_acks
    }
    fn accounted(&self) -> bool {
        self.acked() + self.op_failures == self.issued()
    }
}

fn run_cell(mode: GasMode, plan: &FaultPlan, seed: u64, shards: Option<usize>) -> Report {
    let n = LOCALITIES as u32;
    let mut world = SimWorld::new(LOCALITIES, mode, NetConfig::ideal());
    world.data.cluster.faults = Some(FaultPlane::new(plan.clone()));
    for g in &mut world.data.gas {
        g.cfg.op_deadline = Some(Time::from_us(300));
        g.cfg.sweep_interval = Time::from_us(30);
        g.cfg.retry_on_deadline = true;
        g.cfg.record_history = true;
    }
    let mut h = match shards {
        None => Harness::Seq(Engine::new(world, seed)),
        Some(k) => Harness::Shard(ShardedEngine::new(world, seed, k)),
    };
    let arr: GlobalArray = match &mut h {
        Harness::Seq(e) => alloc_array(e, BLOCKS, 12, Distribution::Cyclic),
        Harness::Shard(s) => s.drive(|e| alloc_array(e, BLOCKS, 12, Distribution::Cyclic)),
    };

    let mut puts_issued = 0u64;
    let mut gets_issued = 0u64;
    let mut migrations_issued = 0u64;
    for round in 0..ROUNDS {
        for l in 0..n {
            // Writer: refresh this locality's own slot of a rotating block.
            let wb = (round + 3 * u64::from(l)) % BLOCKS;
            let val = slot_value(wb, l);
            let gva = arr.block(wb).with_offset(slot_offset(l));
            let ctx = OpId::from_raw(puts_issued);
            h.issue(l, move |eng| {
                memput(eng, l, gva, val.to_le_bytes().to_vec(), ctx);
            });
            puts_issued += 1;

            // Reader: audit another locality's slot. The completion hook
            // in SimWorld checks the data against the registered value.
            let rb = (round + 5 * u64::from(l) + 1) % BLOCKS;
            let owner = (l + 1) % n;
            let gva = arr.block(rb).with_offset(slot_offset(owner));
            let ctx = OpId::from_raw((1 << 40) | gets_issued);
            h.world().expect_value(l, ctx, slot_value(rb, owner));
            h.issue(l, move |eng| {
                memget(eng, l, gva, 8, ctx);
            });
            gets_issued += 1;
        }

        if CHURN > 0 && round % CHURN == 0 && mode.supports_migration() {
            let k = round / CHURN;
            let from = (k % u64::from(n)) as u32;
            let to = ((k + 1) % u64::from(n)) as u32;
            let gva = arr.block(k % BLOCKS);
            let ctx = OpId::from_raw((1 << 41) | migrations_issued);
            h.issue(from, move |eng| {
                migrate_block(eng, from, gva, to, ctx);
            });
            migrations_issued += 1;
        }

        h.run_steps(64);
    }
    h.run();

    let (trace_hash, end_ps, events) = h.hash_now_events();
    let blocks: Vec<Gva> = arr.blocks.clone();
    let w = h.world();
    Report {
        trace_hash,
        end_ps,
        events,
        puts_issued,
        gets_issued,
        migrations_issued,
        put_acks: w.put_acks(),
        get_acks: w.get_acks(),
        migration_acks: w.migration_acks(),
        op_failures: w.op_failures(),
        data_mismatches: w.data_mismatches(),
        gas: w.total_gas_stats(),
        outcomes: w.total_outcomes(),
        net: w.total_counters(),
        faults: w
            .data
            .cluster
            .faults
            .as_ref()
            .map(|f| f.stats)
            .unwrap_or_default(),
        violations: w.violations(&blocks),
    }
}

/// Run one cell sequentially and under `shards` lanes; demand correctness
/// of both and bit-identical reports.
fn assert_cell(name: &str, mode: GasMode, plan: &FaultPlan, seed: u64, shards: usize) -> Report {
    let seq = run_cell(mode, plan, seed, None);
    assert!(
        seq.violations.is_empty(),
        "{name}/seq seed={seed}: violations {:?}",
        seq.violations
    );
    assert!(
        seq.accounted(),
        "{name}/seq seed={seed}: unaccounted ops: {seq:?}"
    );
    assert_eq!(seq.data_mismatches, 0, "{name}/seq seed={seed}");

    let sh = run_cell(mode, plan, seed, Some(shards));
    assert_eq!(
        sh, seq,
        "{name} seed={seed}: sharded run diverged from sequential"
    );
    seq
}

const SEEDS: [u64; 3] = [5, 13, 29];

#[test]
fn shard_chaos_lossless() {
    for seed in SEEDS {
        let r = assert_cell(
            "lossless",
            GasMode::AgasNetwork,
            &FaultPlan::lossless(9),
            seed,
            4,
        );
        assert_eq!(r.op_failures, 0);
        assert_eq!(r.faults.total_drops(), 0);
    }
}

#[test]
fn shard_chaos_drop_light() {
    for seed in SEEDS {
        assert_cell(
            "drop/1%",
            GasMode::AgasNetwork,
            &drop_mix(21, 0.01),
            seed,
            4,
        );
    }
}

#[test]
fn shard_chaos_drop_heavy() {
    let mut retried = false;
    for seed in SEEDS {
        let r = assert_cell(
            "drop/5%",
            GasMode::AgasNetwork,
            &drop_mix(33, 0.05),
            seed,
            4,
        );
        retried |= r.gas.deadline_retries > 0;
    }
    assert!(retried, "5% drops never exercised the sweep-retry path");
}

#[test]
fn shard_chaos_corrupt() {
    let mut injected = false;
    for seed in SEEDS {
        let r = assert_cell(
            "corrupt/4%",
            GasMode::AgasNetwork,
            &corrupt_mix(41, 0.04),
            seed,
            4,
        );
        // Request-class corruption degrades to a link-CRC drop
        // (`corrupt_drops`); payload corruption counts as `corrupted`.
        injected |= r.faults.corrupt_drops + r.faults.corrupted > 0;
    }
    assert!(injected, "corruption plan never injected");
}

#[test]
fn shard_chaos_flap() {
    for seed in SEEDS {
        assert_cell("flap", GasMode::AgasNetwork, &flap_plan(47), seed, 4);
    }
}

#[test]
fn shard_chaos_partition() {
    for seed in SEEDS {
        assert_cell(
            "partition",
            GasMode::AgasNetwork,
            &partition_plan(53),
            seed,
            4,
        );
    }
}

#[test]
fn shard_chaos_software_mode() {
    // The software-AGAS path (two-sided handlers on the owner's CPU pool)
    // under drops, for one seed per lane count.
    for shards in [2, 4] {
        assert_cell(
            "sw-drop/2%",
            GasMode::AgasSoftware,
            &drop_mix(59, 0.02),
            7,
            shards,
        );
    }
}
