//! Shadow-model proptest for the elastic membership plane.
//!
//! A randomized drain ladder runs against a byte-level shadow oracle: known
//! values are written (and fetch-added) into every block, a random member
//! drains while fresh puts keep flowing, and after the hand-off completes
//! the oracle demands:
//!
//! 1. **The departed locality owns nothing** — every view renders it
//!    `Left`, its directory shard is handed off, its block table is empty
//!    (AGAS modes), and no locality's membership view resolves any block
//!    to it.
//! 2. **Every pre-drain block stays reachable** — gets issued after the
//!    drain return exactly the bytes the shadow recorded, including the
//!    puts that landed mid-evacuation.
//! 3. **Replay-cache state follows evacuated blocks** — fetch-adds issued
//!    across the drain observe the exact running sum the shadow carries,
//!    so no AMO was lost or double-applied when its word moved.
//! 4. **Everything is accounted** — every issued op completes exactly
//!    once, and nothing reports failure; an op quietly swallowed by the
//!    departing member would hang (no deadline sweep runs here) and
//!    surface as a missing completion.

mod common;

use agas::ops::{memamo, memget, memput};
use agas::{alloc_array, membership, Distribution, GasMode, Gva, MemberState};
use common::{Ev, World};
use netsim::{AmoOp, Engine, NetConfig, OpId};
use proptest::prelude::*;

fn jittery() -> NetConfig {
    NetConfig {
        jitter_ns: 400,
        ..NetConfig::ideal()
    }
}

fn get_data(eng: &Engine<World>, ctx: u64) -> Option<Vec<u8>> {
    eng.state.events.iter().find_map(|(_, _, e)| match e {
        Ev::GetDone(c, d) if *c == ctx => Some(d.clone()),
        _ => None,
    })
}

fn amo_old(eng: &Engine<World>, ctx: u64) -> Option<u64> {
    eng.state.events.iter().find_map(|(_, _, e)| match e {
        Ev::AmoDone(c, r) if *c == ctx => Some(r.old),
        _ => None,
    })
}

fn completions(eng: &Engine<World>, ctx: u64) -> usize {
    eng.state
        .events
        .iter()
        .filter(|(_, _, e)| match e {
            Ev::PutDone(c) | Ev::GetDone(c, _) | Ev::AmoDone(c, _) => *c == ctx,
            _ => false,
        })
        .count()
}

/// One randomized drain ladder; panics on any oracle violation.
fn drain_ladder(mode: GasMode, seed: u64, drainee: u32, nblocks: u64, adds: u64) {
    let n = 4u32;
    let survivor = (drainee + 1) % n;
    let mut eng = Engine::new(World::new(n as usize, mode, jittery()), seed);
    let arr = alloc_array(&mut eng, nblocks, 12, Distribution::Cyclic);
    let mut issued: Vec<u64> = Vec::new();

    // Shadow state: bytes at offset 0, the AMO word at offset 64, and the
    // mid-drain bytes at offset 128.
    let mut bytes: Vec<Vec<u8>> = Vec::new();
    let mut words: Vec<u64> = vec![0; nblocks as usize];
    let mut mid: Vec<Vec<u8>> = Vec::new();

    for b in 0..nblocks {
        let pat = vec![(seed as u8).wrapping_add(b as u8).wrapping_add(1); 32];
        memput(
            &mut eng,
            (b % n as u64) as u32,
            arr.block(b),
            pat.clone(),
            OpId::from_raw(b),
        );
        issued.push(b);
        bytes.push(pat);
        eng.run();
        for k in 0..adds {
            let ctx = 1000 + b * 10 + k;
            let operand = b + k + 1;
            memamo(
                &mut eng,
                ((b + k) % n as u64) as u32,
                arr.block(b).with_offset(64),
                AmoOp::FetchAdd { operand },
                OpId::from_raw(ctx),
            );
            issued.push(ctx);
            eng.run();
            assert_eq!(
                amo_old(&eng, ctx),
                Some(words[b as usize]),
                "{:?}: pre-drain fetch-add lost the running sum",
                mode
            );
            words[b as usize] += operand;
        }
    }

    // Drain while fresh puts land on the very blocks being evacuated.
    membership::drain(&mut eng, drainee);
    for b in 0..nblocks {
        let pat = vec![(seed as u8).wrapping_add(b as u8).wrapping_add(101); 32];
        memput(
            &mut eng,
            survivor,
            arr.block(b).with_offset(128),
            pat.clone(),
            OpId::from_raw(2000 + b),
        );
        issued.push(2000 + b);
        mid.push(pat);
        eng.run_steps(8);
    }
    eng.run();

    // 1: the departed member owns nothing, in every view.
    for l in 0..n {
        assert_eq!(
            eng.state.gas[l as usize].member.state_of(drainee),
            MemberState::Left,
            "{:?}: locality {} still thinks {} is a member",
            mode,
            l,
            drainee
        );
    }
    assert!(
        eng.state.gas[drainee as usize].dir.is_empty(),
        "{:?}: the drainee kept directory records past Left",
        mode
    );
    if mode.supports_migration() {
        assert!(
            eng.state.gas[drainee as usize].btt.is_empty(),
            "{:?}: the drainee still holds {} resident block(s)",
            mode,
            eng.state.gas[drainee as usize].btt.len()
        );
    }
    for l in 0..n {
        for b in 0..nblocks {
            let key = arr.block(b).block_key();
            let home = Gva(key).home();
            let serving = eng.state.gas[l as usize].member.resolve(key, home);
            assert_ne!(
                serving, drainee,
                "{:?}: locality {} still resolves block {} to the drainee",
                mode, l, b
            );
        }
    }

    // 2 + 3: reachability, data, and the AMO running sum after the drain.
    for b in 0..nblocks {
        memget(
            &mut eng,
            survivor,
            arr.block(b),
            32,
            OpId::from_raw(3000 + b),
        );
        memget(
            &mut eng,
            survivor,
            arr.block(b).with_offset(128),
            32,
            OpId::from_raw(3500 + b),
        );
        memamo(
            &mut eng,
            survivor,
            arr.block(b).with_offset(64),
            AmoOp::FetchAdd { operand: 1 },
            OpId::from_raw(4000 + b),
        );
        issued.extend([3000 + b, 3500 + b, 4000 + b]);
    }
    eng.run();
    for b in 0..nblocks {
        assert_eq!(
            get_data(&eng, 3000 + b).as_ref(),
            Some(&bytes[b as usize]),
            "{:?}: pre-drain bytes of block {} unreachable or wrong",
            mode,
            b
        );
        assert_eq!(
            get_data(&eng, 3500 + b).as_ref(),
            Some(&mid[b as usize]),
            "{:?}: mid-drain put to block {} was lost",
            mode,
            b
        );
        assert_eq!(
            amo_old(&eng, 4000 + b),
            Some(words[b as usize]),
            "{:?}: the AMO word of block {} forgot its sum across the drain",
            mode,
            b
        );
    }

    // 4: exactly-once completion for every issued op, zero failures.
    for &ctx in &issued {
        assert_eq!(
            completions(&eng, ctx),
            1,
            "{:?}: op {} completed {} time(s)",
            mode,
            ctx,
            completions(&eng, ctx)
        );
    }
    let failures = eng
        .state
        .events
        .iter()
        .filter(|(_, _, e)| matches!(e, Ev::OpFailed(_, _)))
        .count();
    assert_eq!(failures, 0, "{:?}: {} op(s) failed", mode, failures);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn drained_member_leaves_nothing_behind(
        seed in 0u64..200,
        mode_ix in 0usize..3,
        drainee in 1u32..4,
        nblocks in 4u64..9,
        adds in 1u64..4,
    ) {
        drain_ladder(GasMode::ALL[mode_ix], seed, drainee, nblocks, adds);
    }
}

/// A deterministic smoke cell per mode, so a regression names its mode
/// without a proptest shrink.
#[test]
fn drain_ladder_smoke_all_modes() {
    for mode in GasMode::ALL {
        drain_ladder(mode, 7, 2, 6, 2);
    }
}
