//! Golden trace-hash pins.
//!
//! Each scenario below runs a deterministic workload and asserts the
//! engine's final `(trace_hash, now)` against a value captured on the
//! tier-1 suites **before** the flat translation-table rewrite. Any change
//! to observable scheduling — eviction order, lookup outcomes, retry
//! timing — shifts these hashes; a refactor of the translation structures
//! must leave them bit-for-bit unchanged.
//!
//! If a *deliberate* protocol change moves a hash, re-capture with:
//! `cargo test -p agas --test trace_pin -- --nocapture` (each test prints
//! its observed pair on failure).

mod common;

use agas::migrate::migrate_block;
use agas::ops::{memamo, memget, memput};
use agas::{alloc_array, membership, Distribution, GasMode, MemberState, OwnerCache};
use common::World;
use netsim::{AmoOp, Engine, NetConfig, OpId, Time};

fn jittery() -> NetConfig {
    NetConfig {
        jitter_ns: 400,
        ..NetConfig::ideal()
    }
}

fn finish(eng: &mut Engine<World>) -> (u64, u64) {
    eng.run();
    (eng.trace_hash(), eng.now().ps())
}

fn check(name: &str, got: (u64, u64), want: (u64, u64)) {
    assert_eq!(
        got, want,
        "{name}: trace pin moved — observed (hash, ps) = ({:#018x}, {})",
        got.0, got.1
    );
}

/// Remote puts + read-back on a jittery fabric, one pin per GAS mode.
fn jitter_puts(mode: GasMode, seed: u64) -> (u64, u64) {
    let mut eng = Engine::new(World::new(3, mode, jittery()), seed);
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    for i in 0..30u64 {
        memput(
            &mut eng,
            (i % 3) as u32,
            arr.block(i % 4).with_offset((i / 4) * 16),
            vec![(i + 1) as u8; 16],
            OpId::from_raw(i),
        );
    }
    eng.run();
    for i in 0..30u64 {
        memget(
            &mut eng,
            ((i + 1) % 3) as u32,
            arr.block(i % 4).with_offset((i / 4) * 16),
            16,
            OpId::from_raw(100 + i),
        );
    }
    finish(&mut eng)
}

/// Puts racing migrations under jitter (the tier-1 migration mix).
fn migration_mix(mode: GasMode) -> (u64, u64) {
    let mut eng = Engine::new(World::new(4, mode, jittery()), 11);
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    for round in 0..6u64 {
        for b in 0..4u64 {
            memput(
                &mut eng,
                (b % 4) as u32,
                arr.block(b).with_offset(round * 16),
                vec![(round * 4 + b + 1) as u8; 16],
                OpId::from_raw(round * 4 + b),
            );
            migrate_block(
                &mut eng,
                0,
                arr.block(b),
                ((round + b) % 4) as u32,
                OpId::from_raw(9000 + round * 4 + b),
            );
        }
        eng.run_steps(40);
    }
    finish(&mut eng)
}

/// The deadline-sweep fault scenario: locality 0 forgets its in-flight
/// wire ops and the sweep converts the silence into failures.
fn deadline_fault(seed: u64) -> (u64, u64) {
    let mut eng = Engine::new(World::new(4, GasMode::AgasNetwork, jittery()), seed);
    for g in &mut eng.state.gas {
        g.cfg.op_deadline = Some(Time::from_us(40));
        g.cfg.sweep_interval = Time::from_us(5);
    }
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    for i in 0..8u64 {
        let gva = arr.block(i % 4).with_offset((i / 4) * 64);
        memput(&mut eng, 0, gva, vec![i as u8 + 1; 64], OpId::from_raw(i));
        memget(&mut eng, 0, gva, 64, OpId::from_raw(100 + i));
    }
    migrate_block(&mut eng, 1, arr.block(1), 3, OpId::from_raw(900));
    migrate_block(&mut eng, 2, arr.block(2), 0, OpId::from_raw(901));
    eng.schedule(Time::from_ns(150), |eng| {
        eng.state.eps[0].drop_pending_ops();
    });
    finish(&mut eng)
}

/// Capacity pressure: a 4-entry NIC table and 3-entry owner caches force
/// constant evictions, pinning the exact LRU eviction order.
fn capacity_pressure() -> (u64, u64) {
    let net = NetConfig {
        xlate_capacity: 4,
        ..NetConfig::ideal()
    };
    let mut eng = Engine::new(World::new(4, GasMode::AgasNetwork, net), 17);
    for g in &mut eng.state.gas {
        g.cache = OwnerCache::new(3);
    }
    let arr = alloc_array(&mut eng, 16, 12, Distribution::Cyclic);
    for i in 0..120u64 {
        let gva = arr.block((i * 7) % 16).with_offset((i % 4) * 32);
        memput(
            &mut eng,
            ((i + 1) % 4) as u32,
            gva,
            vec![(i + 1) as u8; 32],
            OpId::from_raw(i),
        );
        if i % 11 == 10 {
            migrate_block(
                &mut eng,
                (i % 4) as u32,
                arr.block(i % 16),
                ((i + 2) % 4) as u32,
                OpId::from_raw(9000 + i),
            );
        }
        eng.run_steps(15);
    }
    for i in 0..60u64 {
        memget(
            &mut eng,
            (i % 4) as u32,
            arr.block((i * 3) % 16),
            32,
            OpId::from_raw(2000 + i),
        );
    }
    finish(&mut eng)
}

/// A NIC firmware reset mid-run: flush + miss-driven reinstall paths.
fn flush_recovery() -> (u64, u64) {
    let mut eng = Engine::new(World::new(4, GasMode::AgasNetwork, NetConfig::ideal()), 23);
    let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
    for i in 0..60u64 {
        memput(
            &mut eng,
            ((i + 1) % 4) as u32,
            arr.block(i % 8).with_offset((i / 8) * 64),
            vec![(i + 1) as u8; 64],
            OpId::from_raw(i),
        );
        if i == 30 {
            for l in 0..4u32 {
                eng.state.cluster.loc_mut(l).nic.xlate.flush_live();
            }
        }
        eng.run_steps(10);
    }
    finish(&mut eng)
}

/// NIC-executed AMOs racing migrations under jitter: fetch-adds, CAS,
/// scatters, and a gather audit, with churn forcing the NACK/forward arms
/// of the AMO commit path into the pinned schedule.
fn amo_mix(mode: GasMode) -> (u64, u64) {
    let mut eng = Engine::new(World::new(4, mode, jittery()), 19);
    let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
    for i in 0..40u64 {
        let loc = (i % 4) as u32;
        memamo(
            &mut eng,
            loc,
            arr.block(i % 4).with_offset((i % 8) * 8),
            AmoOp::FetchAdd { operand: i + 1 },
            OpId::from_raw(i),
        );
        if i % 5 == 4 {
            memamo(
                &mut eng,
                loc,
                arr.block((i + 1) % 4),
                AmoOp::CompareSwap {
                    expected: 0,
                    desired: i,
                },
                OpId::from_raw(500 + i),
            );
        }
        if i % 7 == 6 {
            memamo(
                &mut eng,
                loc,
                arr.block((i + 2) % 4),
                AmoOp::Scatter {
                    writes: vec![(112, i), (120, i + 1)],
                },
                OpId::from_raw(700 + i),
            );
        }
        if i % 16 == 8 && mode.supports_migration() {
            migrate_block(
                &mut eng,
                loc,
                arr.block(i % 4),
                ((i + 1) % 4) as u32,
                OpId::from_raw(9000 + i),
            );
        }
        eng.run_steps(12);
    }
    for i in 0..16u64 {
        memamo(
            &mut eng,
            (i % 4) as u32,
            arr.block(i % 4),
            AmoOp::Gather {
                offsets: vec![0, 8, 16, 24],
            },
            OpId::from_raw(2000 + i),
        );
    }
    finish(&mut eng)
}

/// The elastic membership plane as a pinned schedule: locality 3 boots
/// `Joining` and takes over a slice of locality 0's directory shard, a
/// member drains through the migration protocol while puts keep flowing,
/// and (under the AGAS modes) a member crashes after a seeded migration so
/// recovery re-issues its home blocks. Every transition is an engine
/// event, so the whole ladder lands in the trace hash.
fn member_mix(mode: GasMode) -> (u64, u64) {
    let mut eng = Engine::new(World::new(4, mode, jittery()), 29);
    membership::mark(&mut eng, 3, MemberState::Joining);
    let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
    for i in 0..24u64 {
        memput(
            &mut eng,
            (i % 3) as u32,
            arr.block(i % 8).with_offset((i / 8) * 32),
            vec![(i + 1) as u8; 32],
            OpId::from_raw(i),
        );
        eng.run_steps(10);
    }
    membership::join(&mut eng, 3, 0);
    for i in 0..24u64 {
        memput(
            &mut eng,
            (i % 4) as u32,
            arr.block(i % 8).with_offset(64 + (i / 8) * 32),
            vec![(i + 101) as u8; 32],
            OpId::from_raw(100 + i),
        );
        eng.run_steps(10);
    }
    let drainee = if mode.supports_migration() { 2 } else { 3 };
    membership::drain(&mut eng, drainee);
    for i in 0..16u64 {
        memget(
            &mut eng,
            (i % 2) as u32,
            arr.block(i % 8),
            32,
            OpId::from_raw(200 + i),
        );
        eng.run_steps(10);
    }
    if mode.supports_migration() {
        // Quiesce before the crash: migration completions carry no
        // deadline, and the seeded migration guarantees the victim owns a
        // block when the links sever.
        eng.run();
        migrate_block(&mut eng, 0, arr.block(0), 1, OpId::from_raw(900));
        eng.run();
        membership::crash(&mut eng, 1);
        eng.run_steps(64);
        for i in 0..8u64 {
            memget(&mut eng, 0, arr.block(i % 8), 32, OpId::from_raw(300 + i));
        }
    }
    finish(&mut eng)
}

#[test]
fn pin_jitter_puts() {
    check(
        "jitter_puts/pgas",
        jitter_puts(GasMode::Pgas, 7),
        GOLDEN_JITTER_PGAS,
    );
    check(
        "jitter_puts/sw",
        jitter_puts(GasMode::AgasSoftware, 7),
        GOLDEN_JITTER_SW,
    );
    check(
        "jitter_puts/net",
        jitter_puts(GasMode::AgasNetwork, 7),
        GOLDEN_JITTER_NET,
    );
}

#[test]
fn pin_migration_mix() {
    check(
        "migration_mix/sw",
        migration_mix(GasMode::AgasSoftware),
        GOLDEN_MIG_SW,
    );
    check(
        "migration_mix/net",
        migration_mix(GasMode::AgasNetwork),
        GOLDEN_MIG_NET,
    );
}

#[test]
fn pin_deadline_fault() {
    check("deadline_fault/11", deadline_fault(11), GOLDEN_DEADLINE_11);
    check("deadline_fault/23", deadline_fault(23), GOLDEN_DEADLINE_23);
}

#[test]
fn pin_capacity_pressure() {
    check("capacity_pressure", capacity_pressure(), GOLDEN_CAPACITY);
}

#[test]
fn pin_flush_recovery() {
    check("flush_recovery", flush_recovery(), GOLDEN_FLUSH);
}

#[test]
fn pin_amo_mix() {
    check("amo_mix/pgas", amo_mix(GasMode::Pgas), GOLDEN_AMO_PGAS);
    check("amo_mix/sw", amo_mix(GasMode::AgasSoftware), GOLDEN_AMO_SW);
    check("amo_mix/net", amo_mix(GasMode::AgasNetwork), GOLDEN_AMO_NET);
}

#[test]
fn pin_member_mix() {
    check(
        "member_mix/pgas",
        member_mix(GasMode::Pgas),
        GOLDEN_MEMBER_PGAS,
    );
    check(
        "member_mix/sw",
        member_mix(GasMode::AgasSoftware),
        GOLDEN_MEMBER_SW,
    );
    check(
        "member_mix/net",
        member_mix(GasMode::AgasNetwork),
        GOLDEN_MEMBER_NET,
    );
}

// Captured from the seed implementation (std HashMap / LruMap translation
// structures) — see module docs. The flat-table rewrite must reproduce
// these exactly.
const GOLDEN_JITTER_PGAS: (u64, u64) = (0x3a1b_a271_08e7_3ff4, 2_155_000);
const GOLDEN_JITTER_SW: (u64, u64) = (0x7b1b_771a_2630_7d1b, 6_591_400);
const GOLDEN_JITTER_NET: (u64, u64) = (0x4a67_b315_e66f_9216, 2_165_000);
const GOLDEN_MIG_SW: (u64, u64) = (0x50aa_0c4b_27e6_6b7e, 109_546_200);
const GOLDEN_MIG_NET: (u64, u64) = (0x6829_dca1_979a_1fcd, 100_872_800);
const GOLDEN_DEADLINE_11: (u64, u64) = (0x7d82_ca5b_de6f_587d, 40_000_000);
const GOLDEN_DEADLINE_23: (u64, u64) = (0xe63a_b7da_7176_c2ea, 40_000_000);
const GOLDEN_CAPACITY: (u64, u64) = (0xfe4f_3eb2_0d05_710b, 165_756_600);
const GOLDEN_FLUSH: (u64, u64) = (0xf28f_56b0_057b_a14c, 21_260_000);
// Captured when the AMO subsystem landed (NIC-executed active operations).
const GOLDEN_AMO_PGAS: (u64, u64) = (0x0c6b_7794_17b5_7bcc, 16_428_800);
const GOLDEN_AMO_SW: (u64, u64) = (0xd8c6_19aa_c5c3_b3e3, 38_448_400);
const GOLDEN_AMO_NET: (u64, u64) = (0xb4af_369e_0364_317d, 24_868_600);
// Captured when the elastic membership plane landed (join / drain / crash).
const GOLDEN_MEMBER_PGAS: (u64, u64) = (0x5e47_706e_d8f4_81fb, 21_898_800);
const GOLDEN_MEMBER_SW: (u64, u64) = (0x8ab1_8722_e778_5b6f, 59_989_200);
const GOLDEN_MEMBER_NET: (u64, u64) = (0x93bf_22a4_bb30_2218, 47_268_200);
