//! Protocol-level tests of memput/memget across all three GAS modes.

mod common;

use agas::ops::{memget, memput};
use agas::{alloc_array, free_array, Distribution, GasMode};
use common::{assert_consistent, engine, Ev};
use netsim::OpId;
use netsim::Time;

fn find_put_done(eng: &netsim::Engine<common::World>, ctx: u64) -> Option<Time> {
    eng.state
        .events
        .iter()
        .find(|(_, _, e)| *e == Ev::PutDone(ctx))
        .map(|(t, _, _)| *t)
}

fn find_get_data(eng: &netsim::Engine<common::World>, ctx: u64) -> Option<Vec<u8>> {
    eng.state.events.iter().find_map(|(_, _, e)| match e {
        Ev::GetDone(c, d) if *c == ctx => Some(d.clone()),
        _ => None,
    })
}

#[test]
fn remote_put_get_round_trip_all_modes() {
    for mode in GasMode::ALL {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
        // Block 1 is homed at locality 1; write from locality 0.
        let gva = arr.block(1).with_offset(100);
        memput(&mut eng, 0, gva, vec![0xCD; 256], OpId::from_raw(1));
        eng.run();
        assert!(find_put_done(&eng, 1).is_some(), "{mode:?}: put incomplete");
        memget(&mut eng, 0, gva, 256, OpId::from_raw(2));
        eng.run();
        assert_eq!(
            find_get_data(&eng, 2).unwrap(),
            vec![0xCD; 256],
            "{mode:?}: data mismatch"
        );
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn local_fast_path_all_modes() {
    for mode in GasMode::ALL {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 8, 12, Distribution::Cyclic);
        // Block 0 is homed at locality 0; operate from locality 0.
        let gva = arr.block(0).with_offset(8);
        memput(&mut eng, 0, gva, vec![7; 16], OpId::from_raw(1));
        eng.run();
        memget(&mut eng, 0, gva, 16, OpId::from_raw(2));
        eng.run();
        assert_eq!(find_get_data(&eng, 2).unwrap(), vec![7; 16], "{mode:?}");
        let g = &eng.state.gas[0];
        assert_eq!(g.stats.local_ops, 2, "{mode:?}: local path not taken");
        assert_eq!(g.stats.remote_ops, 0, "{mode:?}");
        // No network operations at all.
        let total = eng.state.cluster.total_counters();
        assert_eq!(
            total.rdma_puts + total.rdma_gets + total.msgs_sent,
            0,
            "{mode:?}"
        );
    }
}

#[test]
fn protocol_structure_differs_by_mode() {
    // One remote put per mode; E10's counters distinguish the designs.
    let run = |mode| {
        let mut eng = engine(2, mode);
        let arr = alloc_array(&mut eng, 2, 12, Distribution::Cyclic);
        memput(&mut eng, 0, arr.block(1), vec![1; 64], OpId::from_raw(1));
        eng.run();
        eng.state.cluster.total_counters()
    };

    let pgas = run(GasMode::Pgas);
    assert_eq!(pgas.rdma_puts, 1);
    assert_eq!(pgas.xlate_hits, 0, "PGAS never touches the NIC table");
    assert_eq!(pgas.sw_handler_runs, 0);

    let net = run(GasMode::AgasNetwork);
    assert_eq!(net.rdma_puts, 1);
    assert_eq!(net.xlate_hits, 1, "NET translates on the NIC");
    assert_eq!(net.sw_handler_runs, 0, "NET never touches the target CPU");

    let sw = run(GasMode::AgasSoftware);
    assert_eq!(sw.rdma_puts, 0, "SW uses two-sided messages");
    assert_eq!(sw.sw_handler_runs, 1, "SW runs a target-CPU handler");
    assert!(sw.msgs_sent >= 2, "request + ack");
}

#[test]
fn remote_put_latency_ordering() {
    // The paper's headline: NET ≈ PGAS ≪ SW for small remote writes.
    let latency = |mode| {
        let mut eng = engine(2, mode);
        let arr = alloc_array(&mut eng, 2, 12, Distribution::Cyclic);
        let t0 = eng.now();
        memput(&mut eng, 0, arr.block(1), vec![1; 8], OpId::from_raw(1));
        eng.run();
        find_put_done(&eng, 1).unwrap() - t0
    };
    let pgas = latency(GasMode::Pgas);
    let net = latency(GasMode::AgasNetwork);
    let sw = latency(GasMode::AgasSoftware);
    assert!(pgas <= net, "pgas={pgas} net={net}");
    // NET pays only the NIC translation over PGAS.
    assert!(net - pgas <= Time::from_ns(100), "pgas={pgas} net={net}");
    assert!(sw > net, "sw={sw} net={net}");
}

#[test]
fn stale_cache_recovers_via_directory() {
    // Poison the owner cache, then verify the op still completes.
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 4, 12, Distribution::Cyclic);
        let gva = arr.block(2); // homed at locality 2
        eng.state.gas[0].cache.update(
            gva.block_key(),
            agas::OwnerHint {
                owner: 3, // wrong!
                generation: 1,
            },
        );
        memput(&mut eng, 0, gva, vec![9; 32], OpId::from_raw(7));
        eng.run();
        assert!(find_put_done(&eng, 7).is_some(), "{mode:?}");
        assert!(eng.state.gas[0].stats.retries >= 1, "{mode:?}: no bounce?");
        memget(&mut eng, 0, gva, 32, OpId::from_raw(8));
        eng.run();
        assert_eq!(find_get_data(&eng, 8).unwrap(), vec![9; 32], "{mode:?}");
    }
}

#[test]
fn alloc_array_places_and_registers() {
    for mode in GasMode::ALL {
        let mut eng = engine(3, mode);
        let arr = alloc_array(&mut eng, 7, 10, Distribution::Cyclic);
        assert_eq!(arr.len_blocks(), 7);
        for (i, gva) in arr.blocks.iter().enumerate() {
            assert_eq!(gva.home(), (i % 3) as u32);
            let owner = gva.home() as usize;
            assert!(eng.state.gas[owner].btt.is_resident(gva.block_key()));
            assert!(eng.state.gas[owner].dir.peek(gva.block_key()).is_some());
        }
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn free_array_releases_everything() {
    for mode in GasMode::ALL {
        let mut eng = engine(3, mode);
        let arr = alloc_array(&mut eng, 6, 10, Distribution::Cyclic);
        let live_before: u64 = (0..3).map(|l| eng.state.cluster.mem(l).live_blocks()).sum();
        assert_eq!(live_before, 6);
        free_array(&mut eng, &arr);
        let live_after: u64 = (0..3).map(|l| eng.state.cluster.mem(l).live_blocks()).sum();
        assert_eq!(live_after, 0, "{mode:?}");
        for l in 0..3 {
            assert!(eng.state.gas[l].btt.is_empty(), "{mode:?}");
            assert!(eng.state.gas[l].dir.is_empty(), "{mode:?}");
        }
    }
}

#[test]
fn many_concurrent_puts_all_complete() {
    for mode in GasMode::ALL {
        let mut eng = engine(4, mode);
        let arr = alloc_array(&mut eng, 16, 12, Distribution::Cyclic);
        let n_ops = 200u64;
        for i in 0..n_ops {
            let block = arr.block(i % 16);
            let gva = block.with_offset((i / 16) * 16);
            memput(
                &mut eng,
                (i % 4) as u32,
                gva,
                vec![i as u8; 16],
                OpId::from_raw(i),
            );
        }
        eng.run();
        let done = eng
            .state
            .events
            .iter()
            .filter(|(_, _, e)| matches!(e, Ev::PutDone(_)))
            .count();
        assert_eq!(done as u64, n_ops, "{mode:?}");
        assert_consistent(&eng, &arr.blocks);
    }
}

#[test]
fn blocked_distribution_keeps_neighbors_local() {
    let mut eng = engine(4, GasMode::Pgas);
    let arr = alloc_array(&mut eng, 8, 10, Distribution::Blocked);
    assert_eq!(arr.block(0).home(), 0);
    assert_eq!(arr.block(1).home(), 0);
    assert_eq!(arr.block(2).home(), 1);
    assert_eq!(arr.block(7).home(), 3);
}

#[test]
fn gets_return_independent_data() {
    let mut eng = engine(2, GasMode::AgasNetwork);
    let arr = alloc_array(&mut eng, 2, 12, Distribution::Cyclic);
    memput(&mut eng, 0, arr.block(1), vec![1; 8], OpId::from_raw(1));
    memput(
        &mut eng,
        0,
        arr.block(1).with_offset(8),
        vec![2; 8],
        OpId::from_raw(2),
    );
    eng.run();
    memget(&mut eng, 0, arr.block(1), 8, OpId::from_raw(3));
    memget(
        &mut eng,
        0,
        arr.block(1).with_offset(8),
        8,
        OpId::from_raw(4),
    );
    eng.run();
    assert_eq!(find_get_data(&eng, 3).unwrap(), vec![1; 8]);
    assert_eq!(find_get_data(&eng, 4).unwrap(), vec![2; 8]);
}

#[test]
fn nic_table_capacity_pressure_still_correct() {
    // A 2-entry NIC table thrashes but never corrupts data (experiment E6's
    // correctness backstop).
    let mut eng = netsim::Engine::new(
        common::World::new(
            2,
            GasMode::AgasNetwork,
            netsim::NetConfig {
                xlate_capacity: 2,
                ..netsim::NetConfig::ideal()
            },
        ),
        42,
    );
    let arr = alloc_array(&mut eng, 8, 12, Distribution::Single(1));
    for i in 0..8 {
        memput(
            &mut eng,
            0,
            arr.block(i),
            vec![i as u8 + 1; 16],
            OpId::from_raw(i),
        );
    }
    eng.run();
    for i in 0..8 {
        memget(&mut eng, 0, arr.block(i), 16, OpId::from_raw(100 + i));
        eng.run();
        assert_eq!(find_get_data(&eng, 100 + i).unwrap(), vec![i as u8 + 1; 16]);
    }
    let total = eng.state.cluster.total_counters();
    assert!(total.xlate_evictions > 0, "table should have thrashed");
    assert!(total.nacks_sent > 0, "misses should have NACKed");
}
