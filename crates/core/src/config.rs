//! GAS-layer tuning parameters.

use netsim::{RingConfig, Time};

/// Which global-address-space implementation is active.
///
/// This is the paper's experimental variable: every benchmark runs once per
/// mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GasMode {
    /// Static PGAS: a block's home (from its address bits) owns it forever.
    /// Remote access is direct RDMA on initiator-computed physical
    /// addresses; blocks can never move.
    Pgas,
    /// Software-managed AGAS: blocks migrate, and every remote access is a
    /// two-sided message handled by the owner's *CPU*, which performs the
    /// BTT translation and the copy (the classic HPX-5 AGAS baseline).
    AgasSoftware,
    /// Network-managed AGAS (the paper's contribution): blocks migrate, and
    /// remote accesses are one-sided RDMA on *virtual* addresses translated
    /// by the target **NIC** with zero CPU involvement.
    AgasNetwork,
}

impl GasMode {
    /// All modes, in presentation order.
    pub const ALL: [GasMode; 3] = [GasMode::Pgas, GasMode::AgasSoftware, GasMode::AgasNetwork];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            GasMode::Pgas => "PGAS",
            GasMode::AgasSoftware => "AGAS-SW",
            GasMode::AgasNetwork => "AGAS-NET",
        }
    }

    /// Can blocks migrate under this mode?
    pub fn supports_migration(self) -> bool {
        !matches!(self, GasMode::Pgas)
    }
}

/// How the membership plane recovers and evacuates blocks when the
/// locality set changes (see `core::membership`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Re-issue a crashed locality's home-directory blocks as zero-filled,
    /// generation-bumped replacements at the serving home. Off means the
    /// blocks are simply lost (callers must stop checking them).
    pub reissue_home_blocks: bool,
    /// Generation bump applied to re-issued blocks, large enough to
    /// dominate any in-flight migration commit racing the recovery.
    pub generation_bump: u32,
    /// Blocks a draining locality evacuates per pump round.
    pub evac_batch: usize,
    /// Delay between evacuation pump rounds.
    pub evac_interval: Time,
    /// Recover from replica copies instead of zero re-issue. Not yet
    /// implemented — reserved so plans can declare intent (follow-up).
    pub replicas: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            reissue_home_blocks: true,
            generation_bump: 1 << 20,
            evac_batch: 4,
            evac_interval: Time::from_ns(2_000),
            replicas: false,
        }
    }
}

/// Cost parameters of the GAS software paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GasConfig {
    /// CPU time to dispatch and run a software remote-access handler
    /// (software-AGAS path), excluding the per-byte copy.
    pub sw_handler: Time,
    /// CPU time of a directory lookup/update at the home.
    pub dir_lookup: Time,
    /// Fixed cost of a purely local GAS access.
    pub local_op: Time,
    /// Per-byte copy cost of software-path data handling (ps/B).
    pub copy_per_byte_ps: u64,
    /// Source-side owner-cache capacity, in blocks.
    pub cache_capacity: usize,
    /// Abort an operation after this many bounce/retry cycles.
    pub max_attempts: u32,
    /// Base back-off before re-issuing a bounced operation (doubled per
    /// attempt, capped, to guarantee progress past in-flight migrations).
    pub retry_backoff: Time,
    /// If set, an in-flight op older than this is reclaimed by the
    /// per-locality sweep and fails with `DeadlineExceeded` instead of
    /// hanging forever on a lost completion. `None` (the default) disables
    /// the sweep entirely and perturbs no schedule.
    pub op_deadline: Option<Time>,
    /// How often the deadline sweep wakes while ops are in flight.
    pub sweep_interval: Time,
    /// When the deadline sweep reclaims an op that still has bounce budget
    /// left, retry it through the directory-recovery path instead of
    /// failing it — the recovery mode for messages *lost* by the fault
    /// plane (a lost completion otherwise looks identical to a slow one).
    /// Off by default: it perturbs no schedule and keeps the legacy
    /// fail-on-deadline semantics.
    pub retry_on_deadline: bool,
    /// Record every put/get/migrate issued or handled here into
    /// [`crate::GasLocal::history`] for the serializability checker. Off by
    /// default (zero cost, zero memory growth).
    pub record_history: bool,
    /// Post migration/free control traffic (requests, acks, directory
    /// commits) through per-peer descriptor rings instead of one ad-hoc
    /// send per message, sharing doorbells exactly like the data path.
    /// `None` (the default) keeps the pre-ring schedules bit-identical
    /// for the golden trace pins.
    pub ctrl_ring: Option<RingConfig>,
    /// Membership-plane recovery/evacuation tuning. Inert until a
    /// membership event fires (the defaults change no schedule).
    pub recovery: RecoveryPolicy,
}

impl Default for GasConfig {
    fn default() -> GasConfig {
        GasConfig {
            sw_handler: Time::from_ns(500),
            dir_lookup: Time::from_ns(200),
            local_op: Time::from_ns(80),
            copy_per_byte_ps: 25,
            cache_capacity: 1 << 16,
            max_attempts: 64,
            retry_backoff: Time::from_ns(400),
            op_deadline: None,
            sweep_interval: Time::from_ns(2_000),
            retry_on_deadline: false,
            record_history: false,
            ctrl_ring: None,
            recovery: RecoveryPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = GasMode::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels, vec!["PGAS", "AGAS-SW", "AGAS-NET"]);
    }

    #[test]
    fn migration_support() {
        assert!(!GasMode::Pgas.supports_migration());
        assert!(GasMode::AgasSoftware.supports_migration());
        assert!(GasMode::AgasNetwork.supports_migration());
    }

    #[test]
    fn default_config_sane() {
        let c = GasConfig::default();
        assert!(c.max_attempts >= 8);
        assert!(c.sw_handler > c.local_op);
    }
}
