//! Source-side owner caches.
//!
//! In both AGAS modes the initiator of a remote operation needs a guess at
//! the block's current owner. The cache maps block keys to
//! `(owner, generation)` hints, seeded by directory replies and invalidated
//! lazily: a stale hint is only discovered when the operation bounces
//! (software NACK or NIC miss), which triggers a directory re-query.
//!
//! Backed by [`netsim::flatmap::FlatTable`] (exact LRU bound, one probe
//! sequence per access), plus a **one-entry last-translation memo**: for
//! dependent-access patterns (pointer chase, sssp frontier) that hammer
//! the same block repeatedly, a memo hit re-validates a remembered slot
//! index with a single slot read instead of a probe sequence. Memo hits
//! are counted into [`netsim::telemetry`].

use netsim::flatmap::FlatTable;
use netsim::LocalityId;

/// A cached ownership hint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OwnerHint {
    /// Believed current owner.
    pub owner: LocalityId,
    /// Generation the hint was learned at.
    pub generation: u32,
}

/// Seed for the owner cache's flat table (fixed: deterministic runs).
const CACHE_SEED: u64 = 0xcac_5eed;
/// Flush batched memo-hit counts to the process totals this often.
const MEMO_FLUSH_EVERY: u64 = 1 << 12;

/// Per-locality translation (owner) cache.
pub struct OwnerCache {
    map: FlatTable<OwnerHint>,
    capacity: usize,
    /// Last successful translation: `(block key, slot index)`. Validated
    /// by a key check on use, so relocations/evictions can never serve a
    /// wrong entry — at worst the memo misses and we fall back to a probe.
    memo: Option<(u64, u32)>,
    /// The most recent eviction victim and the generation it carried —
    /// guards newest-generation-wins across the eviction boundary (a
    /// racing stale hint must not resurrect an older generation).
    last_evicted: Option<(u64, u32)>,
    hits: u64,
    misses: u64,
    memo_hits: u64,
    memo_pending: u64,
    stale_rejects: u64,
}

impl OwnerCache {
    /// A cache holding at most `capacity` hints.
    pub fn new(capacity: usize) -> OwnerCache {
        OwnerCache {
            map: FlatTable::with_seed(CACHE_SEED),
            capacity,
            memo: None,
            last_evicted: None,
            hits: 0,
            misses: 0,
            memo_hits: 0,
            memo_pending: 0,
            stale_rejects: 0,
        }
    }

    fn note_memo_hit(&mut self) {
        self.memo_hits += 1;
        self.memo_pending += 1;
        if self.memo_pending >= MEMO_FLUSH_EVERY {
            netsim::telemetry::record_translation(0, 0, self.memo_pending);
            self.memo_pending = 0;
        }
    }

    /// Look up a hint for `block_key` (refreshes LRU recency on hit).
    pub fn lookup(&mut self, block_key: u64) -> Option<OwnerHint> {
        if let Some((mk, mi)) = self.memo {
            if mk == block_key {
                if let Some(h) = self.map.lookup_at(mi, block_key) {
                    let out = *h;
                    self.hits += 1;
                    self.note_memo_hit();
                    return Some(out);
                }
                self.memo = None;
            }
        }
        match self.map.lookup_indexed(block_key) {
            Some((idx, h)) => {
                let out = *h;
                self.memo = Some((block_key, idx));
                self.hits += 1;
                Some(out)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a hint, keeping the newest generation on conflict. One probe
    /// sequence: the entry is updated in place when present, inserted at
    /// the probe's end otherwise (evicting the LRU hint if full).
    pub fn update(&mut self, block_key: u64, hint: OwnerHint) {
        if self.capacity == 0 {
            return;
        }
        if let Some((vk, vg)) = self.last_evicted {
            // A hint older than the generation we just evicted under the
            // same key is stale — dropping it preserves generation
            // monotonicity across the eviction boundary. (Checked before
            // the probe: if the key is resident, the in-place generation
            // rule below supersedes this guard anyway.)
            if vk == block_key && hint.generation < vg && self.map.peek(block_key).is_none() {
                self.stale_rejects += 1;
                return;
            }
        }
        let (idx, existed) = self.map.upsert(block_key);
        let slot = self.map.value_at(idx);
        if !existed || slot.generation <= hint.generation {
            *slot = hint;
        }
        self.map.promote_at(idx);
        if self.map.listed_len() > self.capacity {
            if let Some((k, v)) = self.map.remove_tail() {
                self.last_evicted = Some((k, v.generation));
            }
        }
    }

    /// Drop a hint (known stale).
    pub fn invalidate(&mut self, block_key: u64) {
        self.map.remove(block_key);
    }

    /// Drop every hint naming `owner` — it left or crashed, so any guess
    /// pointing there would bounce (or black-hole) until the directory
    /// re-query. Returns the number of hints dropped. The one-entry memo
    /// is safe: it re-validates its key on use, so a purged slot can never
    /// be served.
    pub fn purge_owner(&mut self, owner: LocalityId) -> u64 {
        let dead: Vec<u64> = self
            .map
            .iter()
            .filter(|&(_, h, _)| h.owner == owner)
            .map(|(k, _, _)| k)
            .collect();
        let n = dead.len() as u64;
        for k in dead {
            self.map.remove(k);
        }
        n
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Lookups satisfied by the one-entry memo (a subset of hits).
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Stale re-inserts of a just-evicted victim that were rejected.
    pub fn stale_rejects(&self) -> u64 {
        self.stale_rejects
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Drop for OwnerCache {
    fn drop(&mut self) {
        if self.memo_pending > 0 {
            netsim::telemetry::record_translation(0, 0, self.memo_pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hint(owner: u32, generation: u32) -> OwnerHint {
        OwnerHint { owner, generation }
    }

    #[test]
    fn miss_then_hit() {
        let mut c = OwnerCache::new(8);
        assert_eq!(c.lookup(1), None);
        c.update(1, hint(3, 1));
        assert_eq!(c.lookup(1), Some(hint(3, 1)));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn newer_generation_wins() {
        let mut c = OwnerCache::new(8);
        c.update(1, hint(3, 5));
        c.update(1, hint(4, 2)); // stale: ignored
        assert_eq!(c.lookup(1).unwrap().owner, 3);
        c.update(1, hint(7, 6));
        assert_eq!(c.lookup(1).unwrap().owner, 7);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = OwnerCache::new(8);
        c.update(1, hint(3, 1));
        c.invalidate(1);
        assert_eq!(c.lookup(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_bounds_entries() {
        let mut c = OwnerCache::new(2);
        for k in 0..5u64 {
            c.update(k, hint(k as u32, 1));
        }
        assert_eq!(c.len(), 2);
        assert!(c.lookup(0).is_none());
        assert!(c.lookup(4).is_some());
    }

    #[test]
    fn memo_accelerates_repeat_lookups() {
        let mut c = OwnerCache::new(8);
        c.update(9, hint(2, 1));
        assert_eq!(c.lookup(9), Some(hint(2, 1)));
        assert_eq!(c.memo_hits(), 0, "first lookup primes, not hits, the memo");
        for _ in 0..5 {
            assert_eq!(c.lookup(9), Some(hint(2, 1)));
        }
        assert_eq!(c.memo_hits(), 5);
        // Updates are visible through the memo path (in-place slot write).
        c.update(9, hint(4, 3));
        assert_eq!(c.lookup(9), Some(hint(4, 3)));
    }

    #[test]
    fn memo_never_serves_a_removed_entry() {
        let mut c = OwnerCache::new(8);
        c.update(9, hint(2, 1));
        c.lookup(9);
        c.lookup(9); // memo primed and hitting
        c.invalidate(9);
        assert_eq!(c.lookup(9), None);
        // Another key landing anywhere cannot satisfy the stale memo.
        c.update(10, hint(5, 1));
        assert_eq!(c.lookup(9), None);
    }

    #[test]
    fn generation_monotone_across_eviction() {
        // Fill a tiny cache, learn key 0 at generation 5, evict it, then
        // race a stale generation-2 hint back in: the cache must never
        // step an observed generation backwards.
        let mut c = OwnerCache::new(2);
        c.update(0, hint(3, 5));
        c.update(1, hint(1, 1));
        c.update(2, hint(2, 1)); // evicts key 0 (LRU) at generation 5
        assert!(c.lookup(0).is_none());
        c.update(0, hint(9, 2)); // stale racing hint: must be dropped
        let seen = c.lookup(0);
        assert!(
            seen.is_none_or(|h| h.generation >= 5),
            "stale hint resurrected generation {:?} after evicting gen 5",
            seen
        );
        assert_eq!(c.stale_rejects(), 1);
        // A genuinely newer hint is accepted as usual.
        c.update(0, hint(9, 6));
        assert_eq!(c.lookup(0).unwrap().generation, 6);
    }
}
