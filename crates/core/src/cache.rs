//! Source-side owner caches.
//!
//! In both AGAS modes the initiator of a remote operation needs a guess at
//! the block's current owner. The cache maps block keys to
//! `(owner, generation)` hints, seeded by directory replies and invalidated
//! lazily: a stale hint is only discovered when the operation bounces
//! (software NACK or NIC miss), which triggers a directory re-query.

use netsim::lru::LruMap;
use netsim::LocalityId;

/// A cached ownership hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OwnerHint {
    /// Believed current owner.
    pub owner: LocalityId,
    /// Generation the hint was learned at.
    pub generation: u32,
}

/// Per-locality translation (owner) cache.
pub struct OwnerCache {
    map: LruMap<u64, OwnerHint>,
    hits: u64,
    misses: u64,
}

impl OwnerCache {
    /// A cache holding at most `capacity` hints.
    pub fn new(capacity: usize) -> OwnerCache {
        OwnerCache {
            map: LruMap::new(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a hint for `block_key`.
    pub fn lookup(&mut self, block_key: u64) -> Option<OwnerHint> {
        match self.map.get(&block_key) {
            Some(h) => {
                self.hits += 1;
                Some(*h)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a hint, keeping the newest generation on conflict.
    pub fn update(&mut self, block_key: u64, hint: OwnerHint) {
        if let Some(existing) = self.map.get_mut(&block_key) {
            if existing.generation <= hint.generation {
                *existing = hint;
            }
            return;
        }
        self.map.insert(block_key, hint);
    }

    /// Drop a hint (known stale).
    pub fn invalidate(&mut self, block_key: u64) {
        self.map.remove(&block_key);
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = OwnerCache::new(8);
        assert_eq!(c.lookup(1), None);
        c.update(
            1,
            OwnerHint {
                owner: 3,
                generation: 1,
            },
        );
        assert_eq!(
            c.lookup(1),
            Some(OwnerHint {
                owner: 3,
                generation: 1
            })
        );
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn newer_generation_wins() {
        let mut c = OwnerCache::new(8);
        c.update(
            1,
            OwnerHint {
                owner: 3,
                generation: 5,
            },
        );
        c.update(
            1,
            OwnerHint {
                owner: 4,
                generation: 2,
            },
        ); // stale: ignored
        assert_eq!(c.lookup(1).unwrap().owner, 3);
        c.update(
            1,
            OwnerHint {
                owner: 7,
                generation: 6,
            },
        );
        assert_eq!(c.lookup(1).unwrap().owner, 7);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = OwnerCache::new(8);
        c.update(
            1,
            OwnerHint {
                owner: 3,
                generation: 1,
            },
        );
        c.invalidate(1);
        assert_eq!(c.lookup(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_bounds_entries() {
        let mut c = OwnerCache::new(2);
        for k in 0..5u64 {
            c.update(
                k,
                OwnerHint {
                    owner: k as u32,
                    generation: 1,
                },
            );
        }
        assert_eq!(c.len(), 2);
        assert!(c.lookup(0).is_none());
        assert!(c.lookup(4).is_some());
    }
}
