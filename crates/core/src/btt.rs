//! The per-locality block translation table (BTT).
//!
//! The software side of AGAS: every locality records, for each block it
//! currently *owns*, where the block's bytes live in the local arena, the
//! block's migration generation, and its pin count. Action handlers pin a
//! block while operating on it; migration of a pinned block is deferred
//! until the last pin drops.
//!
//! Backed by [`netsim::flatmap::FlatTable`]: `lookup` is the hottest
//! software-path translation in the system (every local commit goes
//! through it), and the flat layout resolves the common hit in a single
//! probe over one cache line instead of a SipHash + bucket walk.

use netsim::flatmap::FlatTable;
use netsim::PhysAddr;

/// Lifecycle of a locally owned block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BlockState {
    /// Resident and serving accesses.
    #[default]
    Resident,
    /// Hand-off in progress: data sent to the new owner, installation not
    /// yet acknowledged. Incoming software accesses queue.
    Moving,
}

/// One BTT entry.
#[derive(Clone, Copy, Debug, Default)]
pub struct BttEntry {
    /// Physical base of the block in this locality's arena.
    pub base: PhysAddr,
    /// Size class (block is `1 << class` bytes).
    pub class: u8,
    /// Migration generation (starts at 1, bumps on every move).
    pub generation: u32,
    /// Active pins (handlers currently operating on the block).
    pub pins: u32,
    /// Residency state.
    pub state: BlockState,
}

/// Seed for the BTT's flat table (fixed: deterministic runs).
const BTT_SEED: u64 = 0xb77_5eed;

/// The block translation table.
pub struct Btt {
    entries: FlatTable<BttEntry>,
}

impl Default for Btt {
    fn default() -> Btt {
        Btt::new()
    }
}

impl Btt {
    /// An empty table.
    pub fn new() -> Btt {
        Btt {
            entries: FlatTable::with_seed(BTT_SEED),
        }
    }

    /// Record ownership of `block_key`.
    pub fn insert(&mut self, block_key: u64, base: PhysAddr, class: u8, generation: u32) {
        let prev = self.entries.insert(
            block_key,
            BttEntry {
                base,
                class,
                generation,
                pins: 0,
                state: BlockState::Resident,
            },
        );
        debug_assert!(prev.is_none(), "BTT double-insert for {block_key:#x}");
    }

    /// Drop ownership (block migrated away or freed). Returns the entry.
    pub fn remove(&mut self, block_key: u64) -> Option<BttEntry> {
        let e = self.entries.remove(block_key);
        debug_assert!(
            e.is_none_or(|e| e.pins == 0),
            "removed a pinned block {block_key:#x}"
        );
        e
    }

    /// Translate a block key; `None` means "not owned here".
    pub fn lookup(&self, block_key: u64) -> Option<&BttEntry> {
        self.entries.get(block_key)
    }

    /// Mutable entry access.
    pub fn lookup_mut(&mut self, block_key: u64) -> Option<&mut BttEntry> {
        self.entries.get_mut(block_key)
    }

    /// Is the block resident (owned and not mid-migration)?
    pub fn is_resident(&self, block_key: u64) -> bool {
        matches!(
            self.entries.get(block_key),
            Some(BttEntry {
                state: BlockState::Resident,
                ..
            })
        )
    }

    /// Pin `block_key` for a handler. Returns the entry snapshot, or `None`
    /// if the block is not resident here (caller must re-route).
    pub fn pin(&mut self, block_key: u64) -> Option<BttEntry> {
        let e = self.entries.get_mut(block_key)?;
        if e.state != BlockState::Resident {
            return None;
        }
        e.pins += 1;
        Some(*e)
    }

    /// Release a pin. Returns the remaining pin count.
    pub fn unpin(&mut self, block_key: u64) -> u32 {
        let e = self
            .entries
            .get_mut(block_key)
            .expect("unpin of unknown block");
        assert!(e.pins > 0, "unpin underflow for {block_key:#x}");
        e.pins -= 1;
        e.pins
    }

    /// Mark a block as mid-migration. Panics if pinned (callers must wait
    /// for pins to drain first).
    pub fn set_moving(&mut self, block_key: u64) {
        let e = self
            .entries
            .get_mut(block_key)
            .expect("set_moving on unknown block");
        assert_eq!(e.pins, 0, "cannot move a pinned block");
        e.state = BlockState::Moving;
    }

    /// Number of blocks owned here (any state).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no blocks are owned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate owned block keys (deterministic slot order).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.keys()
    }

    /// Remove every entry regardless of state or pin count — the locality
    /// crashed, and its pins die with it. Returns the entries sorted by
    /// block key so teardown (arena frees, censuses) is deterministic.
    pub fn take_all(&mut self) -> Vec<(u64, BttEntry)> {
        let mut v: Vec<(u64, BttEntry)> = self.entries.iter().map(|(k, e, _)| (k, *e)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        self.entries.clear();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut btt = Btt::new();
        btt.insert(100, 0x40, 6, 1);
        let e = btt.lookup(100).unwrap();
        assert_eq!(e.base, 0x40);
        assert_eq!(e.generation, 1);
        assert!(btt.is_resident(100));
        assert!(btt.lookup(200).is_none());
        let removed = btt.remove(100).unwrap();
        assert_eq!(removed.base, 0x40);
        assert!(btt.lookup(100).is_none());
    }

    #[test]
    fn pin_unpin_counts() {
        let mut btt = Btt::new();
        btt.insert(1, 0, 6, 1);
        assert!(btt.pin(1).is_some());
        assert!(btt.pin(1).is_some());
        assert_eq!(btt.lookup(1).unwrap().pins, 2);
        assert_eq!(btt.unpin(1), 1);
        assert_eq!(btt.unpin(1), 0);
    }

    #[test]
    fn pin_missing_block_fails() {
        let mut btt = Btt::new();
        assert!(btt.pin(9).is_none());
    }

    #[test]
    fn moving_blocks_reject_pins() {
        let mut btt = Btt::new();
        btt.insert(1, 0, 6, 1);
        btt.set_moving(1);
        assert!(!btt.is_resident(1));
        assert!(btt.pin(1).is_none());
    }

    #[test]
    #[should_panic(expected = "pinned")]
    fn cannot_move_pinned_block() {
        let mut btt = Btt::new();
        btt.insert(1, 0, 6, 1);
        btt.pin(1);
        btt.set_moving(1);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn unpin_underflow_panics() {
        let mut btt = Btt::new();
        btt.insert(1, 0, 6, 1);
        btt.unpin(1);
    }
}
