//! Global virtual addresses.
//!
//! A GVA packs, HPX-5 style, everything the runtime needs to reason about a
//! global byte into 64 bits:
//!
//! ```text
//!   63            48 47      42 41                                   0
//!  +----------------+----------+--------------------------------------+
//!  |   home (16)    | class(6) |        seq (42-class) | offset(class)|
//!  +----------------+----------+--------------------------------------+
//! ```
//!
//! * **home** — the locality whose directory is authoritative for the
//!   block. In PGAS mode the home *is* the owner forever; in AGAS modes it
//!   is only the starting owner and the directory anchor.
//! * **class** — log2 of the block size; blocks are power-of-two sized
//!   (min 8 B, class 3) so offset arithmetic is mask-and-shift.
//! * **seq** — per-home, per-class block sequence number.
//! * **offset** — byte offset within the block (low `class` bits).
//!
//! The **block key** is the GVA with its offset bits cleared: the unit of
//! translation in the BTT, the owner caches, and — the paper's contribution
//! — the NIC translation tables.

use std::fmt;

/// Number of bits reserved for the home locality.
pub const HOME_BITS: u32 = 16;
/// Number of bits encoding the size class.
pub const CLASS_BITS: u32 = 6;
/// Bits shared by the sequence number and offset.
pub const REST_BITS: u32 = 64 - HOME_BITS - CLASS_BITS; // 42
/// Smallest legal size class (8-byte blocks).
pub const MIN_CLASS: u8 = 3;
/// Largest legal size class (1 GiB blocks; leaves ≥ 12 bits of seq).
pub const MAX_CLASS: u8 = 30;

/// A global virtual address.
///
/// ```
/// use agas::Gva;
///
/// let g = Gva::new(/*home*/ 3, /*class*/ 12, /*seq*/ 7, /*offset*/ 100);
/// assert_eq!(g.home(), 3);
/// assert_eq!(g.block_size(), 4096);
/// assert_eq!(g.offset(), 100);
/// // Offsets never change the block key (the NIC translation unit):
/// assert_eq!(g.block_key(), g.with_offset(0).block_key());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Gva(pub u64);

impl Gva {
    /// The null address (class 0 is reserved, so no valid GVA encodes as 0).
    pub const NULL: Gva = Gva(0);

    /// Construct a GVA from its fields. Panics on out-of-range fields
    /// (construction happens at allocation time, never on fast paths).
    pub fn new(home: u32, class: u8, seq: u64, offset: u64) -> Gva {
        assert!(home < (1 << HOME_BITS), "home {home} out of range");
        assert!(
            (MIN_CLASS..=MAX_CLASS).contains(&class),
            "class {class} out of range"
        );
        let seq_bits = REST_BITS - class as u32;
        assert!(
            seq < (1u64 << seq_bits),
            "seq {seq} too large for class {class}"
        );
        assert!(
            offset < (1u64 << class),
            "offset {offset} exceeds block size"
        );
        let rest = (seq << class) | offset;
        Gva(((home as u64) << (CLASS_BITS + REST_BITS)) | ((class as u64) << REST_BITS) | rest)
    }

    /// Is this the null address?
    #[inline]
    pub fn is_null(self) -> bool {
        self.class_raw() == 0
    }

    /// The home locality (directory anchor / initial owner).
    #[inline]
    pub fn home(self) -> u32 {
        (self.0 >> (CLASS_BITS + REST_BITS)) as u32
    }

    #[inline]
    fn class_raw(self) -> u8 {
        ((self.0 >> REST_BITS) & ((1 << CLASS_BITS) - 1)) as u8
    }

    /// The size class (log2 of the block size).
    #[inline]
    pub fn class(self) -> u8 {
        let c = self.class_raw();
        debug_assert!((MIN_CLASS..=MAX_CLASS).contains(&c), "corrupt GVA {self:?}");
        c
    }

    /// Block size in bytes.
    #[inline]
    pub fn block_size(self) -> u64 {
        1u64 << self.class()
    }

    /// The per-home sequence number of the block.
    #[inline]
    pub fn seq(self) -> u64 {
        (self.0 & ((1u64 << REST_BITS) - 1)) >> self.class()
    }

    /// Byte offset within the block.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0 & ((1u64 << self.class()) - 1)
    }

    /// The block key: this GVA with the offset bits cleared. The unit of
    /// translation everywhere (BTT, caches, NIC tables).
    #[inline]
    pub fn block_key(self) -> u64 {
        self.0 & !((1u64 << self.class()) - 1)
    }

    /// This block's base address (offset zero).
    #[inline]
    pub fn block_base(self) -> Gva {
        Gva(self.block_key())
    }

    /// The same block at byte `offset`.
    #[inline]
    pub fn with_offset(self, offset: u64) -> Gva {
        debug_assert!(offset < self.block_size());
        Gva(self.block_key() | offset)
    }

    /// Add `delta` bytes *within this block*. Panics in debug builds if the
    /// result would leave the block — cross-block arithmetic needs the
    /// allocation's distribution and lives in [`crate::alloc::GlobalArray`].
    // Not `impl Add`: the operand is a byte delta, not another `Gva`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, delta: u64) -> Gva {
        let off = self.offset() + delta;
        debug_assert!(off < self.block_size(), "GVA arithmetic left the block");
        Gva(self.block_key() | off)
    }

    /// Bytes remaining in the block from this address.
    #[inline]
    pub fn remaining_in_block(self) -> u64 {
        self.block_size() - self.offset()
    }
}

impl fmt::Debug for Gva {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            return write!(f, "Gva(NULL)");
        }
        write!(
            f,
            "Gva(home={}, class={}, seq={}, off={})",
            self.home(),
            self.class_raw(),
            self.seq(),
            self.offset()
        )
    }
}

impl fmt::Display for Gva {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_fields() {
        let g = Gva::new(42, 12, 1000, 77);
        assert_eq!(g.home(), 42);
        assert_eq!(g.class(), 12);
        assert_eq!(g.seq(), 1000);
        assert_eq!(g.offset(), 77);
        assert_eq!(g.block_size(), 4096);
    }

    #[test]
    fn null_is_detectable() {
        assert!(Gva::NULL.is_null());
        assert!(!Gva::new(0, 3, 0, 0).is_null());
    }

    #[test]
    fn block_key_masks_offset_only() {
        let a = Gva::new(7, 10, 5, 0);
        let b = Gva::new(7, 10, 5, 1023);
        assert_eq!(a.block_key(), b.block_key());
        let c = Gva::new(7, 10, 6, 0);
        assert_ne!(a.block_key(), c.block_key());
        let d = Gva::new(8, 10, 5, 0);
        assert_ne!(a.block_key(), d.block_key());
    }

    #[test]
    fn with_offset_and_add() {
        let g = Gva::new(1, 8, 3, 0);
        assert_eq!(g.with_offset(100).offset(), 100);
        assert_eq!(g.add(10).add(20).offset(), 30);
        assert_eq!(g.with_offset(100).block_base(), g);
        assert_eq!(g.with_offset(200).remaining_in_block(), 56);
    }

    #[test]
    #[should_panic(expected = "offset")]
    fn oversized_offset_rejected() {
        let _ = Gva::new(0, 6, 0, 64);
    }

    #[test]
    #[should_panic(expected = "seq")]
    fn oversized_seq_rejected() {
        let _ = Gva::new(0, 30, 1 << 12, 0);
    }

    #[test]
    #[should_panic(expected = "class")]
    fn class_out_of_range_rejected() {
        let _ = Gva::new(0, 31, 0, 0);
    }

    #[test]
    fn max_fields_encode() {
        let g = Gva::new(
            (1 << HOME_BITS) - 1,
            MAX_CLASS,
            (1u64 << (REST_BITS - MAX_CLASS as u32)) - 1,
            (1u64 << MAX_CLASS) - 1,
        );
        assert_eq!(g.home(), (1 << HOME_BITS) - 1);
        assert_eq!(g.class(), MAX_CLASS);
    }

    #[test]
    fn distinct_blocks_have_distinct_keys() {
        let mut keys = std::collections::HashSet::new();
        for home in 0..4 {
            for class in [3u8, 6, 12] {
                for seq in 0..64 {
                    assert!(keys.insert(Gva::new(home, class, seq, 0).block_key()));
                }
            }
        }
    }
}
