//! Cluster-wide consistency checking (diagnostics / test oracle).
//!
//! After quiescence, the GAS must satisfy a set of global invariants that
//! no single locality can see on its own. Tests call [`check_blocks`]
//! after every scenario; embedders can run it whenever their cluster is
//! idle to catch protocol regressions.

use crate::gva::Gva;
use crate::{GasMode, GasWorld};

/// A violated invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A block has zero or multiple resident owners.
    OwnerCount {
        /// The block.
        gva: Gva,
        /// The residents found.
        owners: Vec<u32>,
    },
    /// The home directory disagrees with actual residency.
    StaleDirectory {
        /// The block.
        gva: Gva,
        /// What the directory says.
        dir_owner: u32,
        /// Who actually holds it.
        actual_owner: u32,
    },
    /// The home directory lost a live block entirely.
    MissingDirectory {
        /// The block.
        gva: Gva,
    },
    /// (Network mode) the owner's NIC entry is absent or points at the
    /// wrong storage/generation.
    NicMismatch {
        /// The block.
        gva: Gva,
        /// Description of the mismatch.
        detail: &'static str,
    },
    /// An operation never completed (initiator-side leak).
    PendingOps {
        /// The locality holding them.
        locality: u32,
        /// How many.
        count: usize,
    },
}

/// Check every invariant for `blocks`; returns all violations found
/// (empty = consistent). The cluster must be quiescent.
pub fn check_blocks<S: GasWorld>(world: &S, blocks: &[Gva]) -> Vec<Violation> {
    let n = world.cluster_ref().len() as u32;
    let mode = world.gas_mode();
    let mut out = Vec::new();
    for &gva in blocks {
        let key = gva.block_key();
        let owners: Vec<u32> = (0..n)
            .filter(|&l| world.gas_ref(l).btt.is_resident(key))
            .collect();
        if owners.len() != 1 {
            out.push(Violation::OwnerCount {
                gva,
                owners: owners.clone(),
            });
            continue;
        }
        let owner = owners[0];
        if mode != GasMode::Pgas {
            let home = gva.home();
            match world.gas_ref(home).dir.peek(key) {
                None => out.push(Violation::MissingDirectory { gva }),
                Some(rec) if rec.owner != owner => out.push(Violation::StaleDirectory {
                    gva,
                    dir_owner: rec.owner,
                    actual_owner: owner,
                }),
                Some(_) => {}
            }
            if mode == GasMode::AgasNetwork {
                let btt = *world
                    .gas_ref(owner)
                    .btt
                    .lookup(key)
                    .expect("checked resident");
                match world.cluster_ref().loc(owner).nic.xlate.peek(key) {
                    None => out.push(Violation::NicMismatch {
                        gva,
                        detail: "owner NIC has no live entry",
                    }),
                    Some(e) if e.base != btt.base => out.push(Violation::NicMismatch {
                        gva,
                        detail: "NIC base differs from BTT",
                    }),
                    Some(e) if e.generation != btt.generation => out.push(Violation::NicMismatch {
                        gva,
                        detail: "NIC generation differs from BTT",
                    }),
                    Some(_) => {}
                }
            }
        }
    }
    for l in 0..n {
        let pending = world.gas_ref(l).outstanding_ops();
        if pending != 0 {
            out.push(Violation::PendingOps {
                locality: l,
                count: pending,
            });
        }
    }
    out
}

/// Panic with a readable report if any invariant is violated.
pub fn assert_consistent<S: GasWorld>(world: &S, blocks: &[Gva]) {
    let violations = check_blocks(world, blocks);
    assert!(
        violations.is_empty(),
        "GAS consistency violated:\n{violations:#?}"
    );
}
