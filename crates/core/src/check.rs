//! Cluster-wide consistency checking (diagnostics / test oracle).
//!
//! After quiescence, the GAS must satisfy a set of global invariants that
//! no single locality can see on its own. Tests call [`check_blocks`]
//! after every scenario; embedders can run it whenever their cluster is
//! idle to catch protocol regressions.
//!
//! Three oracles live here:
//!
//! * [`check_blocks`] — end-state invariants: exactly one resident owner
//!   per block, directory agreement, NIC-table agreement, no leaked ops.
//! * [`check_history`] — a *serializability* check over the per-locality
//!   op histories recorded when [`GasConfig::record_history`] is on:
//!   every completed get must return a value some legal serialization of
//!   the recorded puts allows. This catches wrong-data bugs (lost
//!   invalidation delivering stale bytes, duplicated put landing after a
//!   newer one) that leave the end state perfectly tidy.
//! * [`check_word_history_events`] — a word-level *linearizability* check
//!   over the AMO logs ([`WordEvent`]): every value an RMW observed must
//!   have been produced, and (when values are unique) consumed at most
//!   once. A double-applied fetch-and-add surfaces as a phantom read; a
//!   lost-but-acked one as a duplicate consumption.
//!
//! [`GasConfig::record_history`]: crate::GasConfig::record_history

use crate::gva::Gva;
use crate::{GasMode, GasWorld};
use netsim::{LocalityId, Time};
use std::collections::BTreeMap;

/// What a history event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistKind {
    /// A memput (or local put) of `len` bytes.
    Put,
    /// A memget (or local get) of `len` bytes.
    Get,
    /// A block migration (context for reports; not part of the value
    /// legality relation — migration must preserve contents).
    Migrate,
    /// Crash recovery re-issued the block zero-filled at `issued`. Enters
    /// the legality relation as a block-wide write of zeros: reads after
    /// the recovery may legally observe fresh zeros *or* (if a racing
    /// pre-crash put straddles the window) the old value.
    Recover,
}

/// One logged operation, with its logical-time interval.
///
/// `issued` is when the initiator submitted the op; `done` is when its
/// completion fired (`None` = never completed — failed, or still in
/// flight). The true memory effect happened somewhere inside
/// `[issued, done]`, so wide intervals are *sound*: the checker only
/// reports a violation when **no** placement of the effects inside their
/// intervals can explain a get's value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistEvent {
    /// Event kind.
    pub kind: HistKind,
    /// Block key of the accessed block.
    pub block: u64,
    /// Byte offset within the block.
    pub offset: u64,
    /// Access length in bytes (for migrate: 0).
    pub len: u32,
    /// Value fingerprint: [`value_hash`] of the bytes written/read (for
    /// migrate: the destination locality).
    pub value: u64,
    /// Submission time.
    pub issued: Time,
    /// Completion time (`None` = never completed; a failed put *may have
    /// applied* and is kept as a permanent candidate, never a masker).
    pub done: Option<Time>,
    /// Did the op complete successfully?
    pub ok: bool,
    /// The locality that issued (or, for handler-side events, ran) it.
    pub loc: LocalityId,
}

/// Order-insensitive fingerprint-quality hash of a byte string (the
/// history checker compares fingerprints, never raw payloads).
pub fn value_hash(bytes: &[u8]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ bytes.len() as u64;
    for chunk in bytes.chunks(8) {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        h = netsim::rng::mix64(h ^ u64::from_le_bytes(buf));
    }
    h
}

/// What an AMO-level word event did to its 8-byte word, as the initiator
/// observed it at completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordOp {
    /// The word was set to `value` (scatter words; masked-put/CAS whose
    /// prior value is folded into `Rmw` instead).
    Write {
        /// The value installed.
        value: u64,
    },
    /// The word was observed to hold `value` without changing it (gather
    /// words, zero-operand fetch-add, failed compare-and-swap, no-op
    /// masked-put).
    Read {
        /// The value observed.
        value: u64,
    },
    /// Atomic read-modify-write: observed `read`, installed `written`
    /// (`written != read` by construction — no-ops log as `Read`).
    Rmw {
        /// The value the op observed.
        read: u64,
        /// The value the op installed.
        written: u64,
    },
    /// An RMW that terminally failed: it *may* have applied, and the
    /// initiator never learned what it observed or installed. Its slot is
    /// exempted from the strict rules (skipping is always sound).
    Opaque,
}

/// One logged word-level event, with its logical-time interval (same
/// interval semantics as [`HistEvent`]: the true memory effect happened
/// somewhere inside `[issued, done]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WordEvent {
    /// Block key of the accessed block.
    pub block: u64,
    /// Byte offset of the 8-byte word within the block.
    pub offset: u64,
    /// What happened to the word.
    pub op: WordOp,
    /// Submission time.
    pub issued: Time,
    /// Completion time (`None` = never completed).
    pub done: Option<Time>,
    /// Did the op complete successfully?
    pub ok: bool,
    /// The locality that issued it.
    pub loc: LocalityId,
}

/// A violated invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A block has zero or multiple resident owners.
    OwnerCount {
        /// The block.
        gva: Gva,
        /// The residents found.
        owners: Vec<u32>,
    },
    /// The home directory disagrees with actual residency.
    StaleDirectory {
        /// The block.
        gva: Gva,
        /// What the directory says.
        dir_owner: u32,
        /// Who actually holds it.
        actual_owner: u32,
    },
    /// The home directory lost a live block entirely.
    MissingDirectory {
        /// The block.
        gva: Gva,
    },
    /// (Network mode) the owner's NIC entry is absent or points at the
    /// wrong storage/generation.
    NicMismatch {
        /// The block.
        gva: Gva,
        /// Description of the mismatch.
        detail: &'static str,
    },
    /// An operation never completed (initiator-side leak).
    PendingOps {
        /// The locality holding them.
        locality: u32,
        /// How many.
        count: usize,
    },
    /// A completed get returned a value that no legal serialization of
    /// the recorded put history allows.
    History {
        /// The block.
        gva: Gva,
        /// Human-readable description of the illegal read.
        detail: String,
    },
}

impl Violation {
    /// The block key a violation implicates, if any (drives the history
    /// suffix in [`assert_consistent`]'s report).
    pub fn block_key(&self) -> Option<u64> {
        match self {
            Violation::OwnerCount { gva, .. }
            | Violation::StaleDirectory { gva, .. }
            | Violation::MissingDirectory { gva }
            | Violation::NicMismatch { gva, .. }
            | Violation::History { gva, .. } => Some(gva.block_key()),
            Violation::PendingOps { .. } => None,
        }
    }
}

/// Check every invariant for `blocks`; returns all violations found
/// (empty = consistent). The cluster must be quiescent.
pub fn check_blocks<S: GasWorld>(world: &S, blocks: &[Gva]) -> Vec<Violation> {
    let n = world.cluster_ref().len() as u32;
    let mode = world.gas_mode();
    let mut out = Vec::new();
    for &gva in blocks {
        let key = gva.block_key();
        let owners: Vec<u32> = (0..n)
            .filter(|&l| world.gas_ref(l).btt.is_resident(key))
            .collect();
        if owners.len() != 1 {
            out.push(Violation::OwnerCount {
                gva,
                owners: owners.clone(),
            });
            continue;
        }
        let owner = owners[0];
        if mode != GasMode::Pgas {
            // Membership may have re-homed the record; ask the resident
            // owner's view (quiescence means every view agrees, but the
            // owner's is the one the data path actually consulted).
            let home = world.gas_ref(owner).member.resolve(key, gva.home());
            match world.gas_ref(home).dir.peek(key) {
                None => out.push(Violation::MissingDirectory { gva }),
                Some(rec) if rec.owner != owner => out.push(Violation::StaleDirectory {
                    gva,
                    dir_owner: rec.owner,
                    actual_owner: owner,
                }),
                Some(_) => {}
            }
            if mode == GasMode::AgasNetwork {
                let btt = *world
                    .gas_ref(owner)
                    .btt
                    .lookup(key)
                    .expect("checked resident");
                match world.cluster_ref().loc(owner).nic.xlate.peek(key) {
                    None => out.push(Violation::NicMismatch {
                        gva,
                        detail: "owner NIC has no live entry",
                    }),
                    Some(e) if e.base != btt.base => out.push(Violation::NicMismatch {
                        gva,
                        detail: "NIC base differs from BTT",
                    }),
                    Some(e) if e.generation != btt.generation => out.push(Violation::NicMismatch {
                        gva,
                        detail: "NIC generation differs from BTT",
                    }),
                    Some(_) => {}
                }
            }
        }
    }
    for l in 0..n {
        let pending = world.gas_ref(l).outstanding_ops();
        if pending != 0 {
            out.push(Violation::PendingOps {
                locality: l,
                count: pending,
            });
        }
    }
    out
}

/// Run the serializability check over every locality's recorded history,
/// and the word-level linearizability check over every AMO log.
/// Empty when [`crate::GasConfig::record_history`] was off everywhere.
pub fn check_history<S: GasWorld>(world: &S) -> Vec<Violation> {
    let n = world.cluster_ref().len() as u32;
    let mut events: Vec<HistEvent> = Vec::new();
    let mut words: Vec<WordEvent> = Vec::new();
    for l in 0..n {
        events.extend(world.gas_ref(l).history.iter().copied());
        words.extend(world.gas_ref(l).word_history.iter().copied());
    }
    let recovers: Vec<(u64, Time)> = events
        .iter()
        .filter(|e| e.kind == HistKind::Recover)
        .map(|e| (e.block, e.issued))
        .collect();
    let mut out = check_history_events(&events);
    out.extend(check_word_history_events_with_recovery(&words, &recovers));
    out
}

/// The serializability rule, over an explicit event list.
///
/// Events are grouped by exact `(block, offset, len)` slot — partially
/// overlapping accesses are *not* cross-checked (a documented limit; the
/// chaos workloads access disjoint fixed-size slots). Per slot, a
/// completed get `g` is legal iff some put `w` (including the synthetic
/// initial all-zeros state) satisfies:
///
/// 1. `w.value == g.value`,
/// 2. `w.issued ≤ g.done` (the write could have applied before the read
///    took effect), and
/// 3. no *successful* put `w2` fits strictly between them:
///    `w.done < w2.issued && w2.done < g.issued` — such a `w2` must have
///    overwritten `w` before the get started.
///
/// Never-completed puts keep `done = ∞`: they remain candidates forever
/// (they *may* have applied) but can never mask another write. Both rules
/// widen intervals, so the check is sound — a reported violation is a
/// real one under every possible effect placement.
pub fn check_history_events(events: &[HistEvent]) -> Vec<Violation> {
    struct Write {
        issued: Time,
        done: Option<Time>,
        value: u64,
    }
    let mut slots: BTreeMap<(u64, u64, u32), Vec<&HistEvent>> = BTreeMap::new();
    // Crash recoveries zero the whole block: they act as a synthetic
    // all-zeros put on *every* slot of the block, whatever its shape.
    let mut recovers: Vec<(u64, Time)> = Vec::new();
    for e in events {
        if e.kind == HistKind::Recover {
            recovers.push((e.block, e.issued));
            continue;
        }
        if e.kind == HistKind::Migrate {
            continue;
        }
        slots.entry((e.block, e.offset, e.len)).or_default().push(e);
    }
    let mut out = Vec::new();
    for ((block, offset, len), evs) in slots {
        let mut writes = vec![Write {
            issued: Time::ZERO,
            done: Some(Time::ZERO),
            value: value_hash(&vec![0u8; len as usize]),
        }];
        writes.extend(
            recovers
                .iter()
                .filter(|&&(b, _)| b == block)
                .map(|&(_, t)| Write {
                    issued: t,
                    done: Some(t),
                    value: value_hash(&vec![0u8; len as usize]),
                }),
        );
        writes.extend(
            evs.iter()
                .filter(|e| e.kind == HistKind::Put)
                .map(|e| Write {
                    issued: e.issued,
                    done: e.done,
                    value: e.value,
                }),
        );
        for g in evs
            .iter()
            .filter(|e| e.kind == HistKind::Get && e.ok && e.done.is_some())
        {
            let g_done = g.done.unwrap();
            let legal = writes.iter().any(|w| {
                w.value == g.value && w.issued <= g_done && {
                    let w_done = w.done.unwrap_or(Time::MAX);
                    !writes.iter().any(|w2| {
                        w2.done
                            .is_some_and(|d2| w_done < w2.issued && d2 < g.issued)
                    })
                }
            });
            if !legal {
                let candidates: Vec<String> = writes
                    .iter()
                    .map(|w| {
                        format!(
                            "put {:#018x} [{}..{}]",
                            w.value,
                            w.issued,
                            w.done.map_or("∞".into(), |d| d.to_string())
                        )
                    })
                    .collect();
                out.push(Violation::History {
                    gva: Gva(block),
                    detail: format!(
                        "get at loc {} (offset {offset}, len {len}) returned {:#018x} \
                         over [{}..{}], but no serialization of {} recorded put(s) \
                         allows it: {}",
                        g.loc,
                        g.value,
                        g.issued,
                        g_done,
                        writes.len(),
                        candidates.join(", ")
                    ),
                });
            }
        }
    }
    out
}

/// The word-level linearizability rule, over an explicit AMO event list.
///
/// Events are grouped by `(block, offset)` word. Per word, with the
/// *produced* values being the initial zero, every `Write`'s value
/// (including never-completed writes — they may have applied), and every
/// successful `Rmw`'s `written`:
///
/// 1. **No phantom reads** — every successful `Read`/`Rmw` must have
///    observed a produced value whose producer was issued no later than
///    the observer's completion. A double-applied fetch-and-add makes the
///    next observer read a value nobody produced.
/// 2. **Unique consumption** — when all produced values are distinct,
///    each may be consumed (observed as the `read` of a *mutating* `Rmw`)
///    at most once. An acked-but-lost RMW leaves its observed value in
///    place for a second RMW to consume.
///
/// A word touched by any [`WordOp::Opaque`] event (a terminally-failed
/// RMW whose effect the initiator never learned) is exempted from both
/// rules — skipping is sound, and the fault-recovery machinery keeps such
/// words rare. Rule 2 likewise disables itself when produced values
/// repeat. Both exemptions only ever weaken the check, so a reported
/// violation is real under every possible effect placement.
pub fn check_word_history_events(events: &[WordEvent]) -> Vec<Violation> {
    check_word_history_events_with_recovery(events, &[])
}

/// [`check_word_history_events`], with crash recoveries folded in: each
/// `(block, time)` recovery re-produces zero on every word of the block
/// (the recovered storage is zero-filled). A second zero producer makes
/// the word's produced values non-distinct, which auto-disables the
/// unique-consumption rule there — exactly the weakening recovery
/// requires, since a pre- and a post-crash RMW may both legally observe
/// zero.
pub fn check_word_history_events_with_recovery(
    events: &[WordEvent],
    recovers: &[(u64, Time)],
) -> Vec<Violation> {
    let mut slots: BTreeMap<(u64, u64), Vec<&WordEvent>> = BTreeMap::new();
    for e in events {
        slots.entry((e.block, e.offset)).or_default().push(e);
    }
    let mut out = Vec::new();
    for ((block, offset), evs) in slots {
        if evs.iter().any(|e| matches!(e.op, WordOp::Opaque)) {
            continue;
        }
        struct Produced {
            value: u64,
            issued: Time,
        }
        let mut produced = vec![Produced {
            value: 0,
            issued: Time::ZERO,
        }];
        produced.extend(
            recovers
                .iter()
                .filter(|&&(b, _)| b == block)
                .map(|&(_, t)| Produced {
                    value: 0,
                    issued: t,
                }),
        );
        for e in &evs {
            match e.op {
                // A failed write may still have applied: keep it as a
                // candidate producer (same treatment as failed puts in
                // the byte-level checker).
                WordOp::Write { value } => produced.push(Produced {
                    value,
                    issued: e.issued,
                }),
                WordOp::Rmw { written, .. } if e.ok => produced.push(Produced {
                    value: written,
                    issued: e.issued,
                }),
                _ => {}
            }
        }
        let explain = |v: u64| -> String {
            format!(
                "word {block:#x}+{offset}: value {v:#018x} vs {} produced value(s): {}",
                produced.len(),
                produced
                    .iter()
                    .map(|p| format!("{:#018x}@{}", p.value, p.issued))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        // Rule 1: phantom reads.
        for e in &evs {
            let (observed, what) = match e.op {
                WordOp::Read { value } if e.ok => (value, "read"),
                WordOp::Rmw { read, .. } if e.ok => (read, "rmw"),
                _ => continue,
            };
            let end = e.done.unwrap_or(Time::MAX);
            if !produced
                .iter()
                .any(|p| p.value == observed && p.issued <= end)
            {
                out.push(Violation::History {
                    gva: Gva(block),
                    detail: format!(
                        "{what} at loc {} observed a value nobody produced — {}",
                        e.loc,
                        explain(observed)
                    ),
                });
            }
        }
        // Rule 2: unique consumption, only when produced values are
        // pairwise distinct (otherwise two legal RMWs can observe the
        // same value and the rule would be unsound).
        let mut values: Vec<u64> = produced.iter().map(|p| p.value).collect();
        values.sort_unstable();
        let distinct = values.windows(2).all(|w| w[0] != w[1]);
        if distinct {
            let mut consumed: BTreeMap<u64, u32> = BTreeMap::new();
            for e in &evs {
                if let WordOp::Rmw { read, .. } = e.op {
                    if e.ok {
                        *consumed.entry(read).or_insert(0) += 1;
                    }
                }
            }
            for (v, count) in consumed {
                if count > 1 {
                    out.push(Violation::History {
                        gva: Gva(block),
                        detail: format!(
                            "{count} atomic RMWs all consumed the same value \
                             (an acked op must have been lost) — {}",
                            explain(v)
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The trailing history (up to `limit` events) touching `block`, across
/// all localities, formatted one per line.
fn history_suffix<S: GasWorld>(world: &S, block: u64, limit: usize) -> String {
    let n = world.cluster_ref().len() as u32;
    let mut events: Vec<HistEvent> = (0..n)
        .flat_map(|l| world.gas_ref(l).history.iter().copied())
        .filter(|e| e.block == block)
        .collect();
    if events.is_empty() {
        return String::from("    (no history recorded for this block)\n");
    }
    events.sort_by_key(|e| (e.issued, e.loc));
    let skipped = events.len().saturating_sub(limit);
    let mut s = String::new();
    if skipped > 0 {
        s.push_str(&format!("    … {skipped} earlier event(s) elided …\n"));
    }
    for e in events.iter().skip(skipped) {
        s.push_str(&format!(
            "    {:?} loc={} off={} len={} value={:#018x} issued={} done={} ok={}\n",
            e.kind,
            e.loc,
            e.offset,
            e.len,
            e.value,
            e.issued,
            e.done.map_or("∞".into(), |d| d.to_string()),
            e.ok
        ));
    }
    s
}

/// Panic with a readable report if any invariant — end-state or history —
/// is violated. Every violation is listed (not just the first), each with
/// its block key, the active GAS mode, and the offending block's trailing
/// history.
pub fn assert_consistent<S: GasWorld>(world: &S, blocks: &[Gva]) {
    let mut violations = check_blocks(world, blocks);
    violations.extend(check_history(world));
    if violations.is_empty() {
        return;
    }
    let mode = world.gas_mode();
    let mut report = format!(
        "GAS consistency violated under {}: {} violation(s)\n",
        mode.label(),
        violations.len()
    );
    for (i, v) in violations.iter().enumerate() {
        match v.block_key() {
            Some(key) => {
                report.push_str(&format!(
                    "\n[{i}] block {key:#x} ({}): {v:?}\n",
                    mode.label()
                ));
                report.push_str(&history_suffix(world, key, 8));
            }
            None => report.push_str(&format!("\n[{i}] {v:?}\n")),
        }
    }
    panic!("{report}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: HistKind, value: u64, issued: u64, done: Option<u64>, ok: bool) -> HistEvent {
        HistEvent {
            kind,
            block: 0x40,
            offset: 8,
            len: 8,
            value,
            issued: Time::from_ns(issued),
            done: done.map(Time::from_ns),
            ok,
            loc: 0,
        }
    }

    #[test]
    fn fresh_block_reads_zero() {
        let zeros = value_hash(&[0u8; 8]);
        let h = [ev(HistKind::Get, zeros, 5, Some(10), true)];
        assert!(check_history_events(&h).is_empty());
        let bad = [ev(HistKind::Get, 0xBEEF, 5, Some(10), true)];
        assert_eq!(check_history_events(&bad).len(), 1);
    }

    #[test]
    fn read_your_write_is_legal() {
        let h = [
            ev(HistKind::Put, 0xA, 0, Some(10), true),
            ev(HistKind::Get, 0xA, 20, Some(30), true),
        ];
        assert!(check_history_events(&h).is_empty());
    }

    #[test]
    fn stale_read_past_a_newer_write_is_flagged() {
        // v1 fully done by 10, v2 fully done by 30, get starts at 40 but
        // still returns v1: v2 fits strictly between — illegal.
        let h = [
            ev(HistKind::Put, 0xA, 0, Some(10), true),
            ev(HistKind::Put, 0xB, 20, Some(30), true),
            ev(HistKind::Get, 0xA, 40, Some(50), true),
        ];
        let v = check_history_events(&h);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::History { gva, detail } => {
                assert_eq!(gva.0, 0x40);
                assert!(detail.contains("no serialization"), "{detail}");
            }
            other => panic!("wrong violation: {other:?}"),
        }
    }

    #[test]
    fn overlapping_put_and_get_allow_either_value() {
        // The get overlaps v2's interval: it may see v1 or v2.
        let old = [
            ev(HistKind::Put, 0xA, 0, Some(10), true),
            ev(HistKind::Put, 0xB, 20, Some(30), true),
            ev(HistKind::Get, 0xA, 25, Some(35), true),
        ];
        assert!(check_history_events(&old).is_empty());
        let new = [
            ev(HistKind::Put, 0xA, 0, Some(10), true),
            ev(HistKind::Put, 0xB, 20, Some(30), true),
            ev(HistKind::Get, 0xB, 25, Some(35), true),
        ];
        assert!(check_history_events(&new).is_empty());
    }

    #[test]
    fn failed_put_may_have_applied_but_never_masks() {
        // v2's put never completed: reading v2 later is legal (it may have
        // applied), and reading v1 later is *also* legal (it may not have).
        let h = [
            ev(HistKind::Put, 0xA, 0, Some(10), true),
            ev(HistKind::Put, 0xB, 20, None, false),
            ev(HistKind::Get, 0xB, 40, Some(50), true),
            ev(HistKind::Get, 0xA, 60, Some(70), true),
        ];
        assert!(check_history_events(&h).is_empty());
    }

    #[test]
    fn distinct_slots_never_interact() {
        let mut a = ev(HistKind::Put, 0xA, 0, Some(10), true);
        a.offset = 0;
        let mut g = ev(HistKind::Get, 0xCAFE, 40, Some(50), true);
        g.offset = 64;
        // Wrong value at offset 64, but zeros hash to... not 0xCAFE either:
        // one violation, and the put at offset 0 is not consulted.
        let v = check_history_events(&[a, g]);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn failed_and_incomplete_gets_assert_nothing() {
        let h = [
            ev(HistKind::Get, 0xBAD, 5, None, false),
            ev(HistKind::Get, 0xBAD, 5, Some(9), false),
        ];
        assert!(check_history_events(&h).is_empty());
    }

    #[test]
    fn migrations_are_context_only() {
        let zeros = value_hash(&[0u8; 8]);
        let h = [
            ev(HistKind::Migrate, 3, 1, Some(2), true),
            ev(HistKind::Get, zeros, 5, Some(10), true),
        ];
        assert!(check_history_events(&h).is_empty());
    }

    #[test]
    fn recovery_reproduces_zeros() {
        let zeros = value_hash(&[0u8; 8]);
        // Put lands, crash recovery zeroes the block, later read sees
        // zeros again: legal only because of the Recover event.
        let h = [
            ev(HistKind::Put, 0xA, 5, Some(10), true),
            ev(HistKind::Recover, 0, 20, Some(20), true),
            ev(HistKind::Get, zeros, 30, Some(40), true),
        ];
        assert!(check_history_events(&h).is_empty());
        let without = [h[0], h[2]];
        assert_eq!(check_history_events(&without).len(), 1);
    }

    #[test]
    fn recovery_masks_fully_earlier_puts() {
        // The put finished before recovery zeroed the block; reading its
        // value afterwards means the zero-fill was lost.
        let h = [
            ev(HistKind::Put, 0xA, 0, Some(10), true),
            ev(HistKind::Recover, 0, 20, Some(20), true),
            ev(HistKind::Get, 0xA, 30, Some(40), true),
        ];
        assert_eq!(check_history_events(&h).len(), 1);
        // A put straddling the recovery window stays a candidate (its
        // retry may have re-applied after the zero-fill).
        let straddle = [
            ev(HistKind::Put, 0xA, 0, Some(25), true),
            ev(HistKind::Recover, 0, 20, Some(20), true),
            ev(HistKind::Get, 0xA, 30, Some(40), true),
        ];
        assert!(check_history_events(&straddle).is_empty());
    }

    #[test]
    fn value_hash_distinguishes_contents_and_length() {
        assert_ne!(value_hash(&[0u8; 8]), value_hash(&[0u8; 16]));
        assert_ne!(value_hash(&[1u8; 8]), value_hash(&[2u8; 8]));
        assert_eq!(value_hash(b"same"), value_hash(b"same"));
    }

    fn wev(op: WordOp, issued: u64, done: Option<u64>, ok: bool) -> WordEvent {
        WordEvent {
            block: 0x40,
            offset: 8,
            op,
            issued: Time::from_ns(issued),
            done: done.map(Time::from_ns),
            ok,
            loc: 0,
        }
    }

    #[test]
    fn fetch_add_chain_is_legal() {
        // 0 → 1 → 2 → 3, each FAA consuming the previous written value.
        let h = [
            wev(
                WordOp::Rmw {
                    read: 0,
                    written: 1,
                },
                0,
                Some(10),
                true,
            ),
            wev(
                WordOp::Rmw {
                    read: 1,
                    written: 2,
                },
                5,
                Some(20),
                true,
            ),
            wev(
                WordOp::Rmw {
                    read: 2,
                    written: 3,
                },
                15,
                Some(30),
                true,
            ),
            wev(WordOp::Read { value: 3 }, 40, Some(50), true),
        ];
        assert!(check_word_history_events(&h).is_empty());
    }

    #[test]
    fn phantom_read_is_flagged() {
        // Nobody produced 7: the canonical double-apply signature (a
        // replayed FAA bumped the word once too often).
        let h = [
            wev(
                WordOp::Rmw {
                    read: 0,
                    written: 1,
                },
                0,
                Some(10),
                true,
            ),
            wev(
                WordOp::Rmw {
                    read: 7,
                    written: 8,
                },
                20,
                Some(30),
                true,
            ),
        ];
        let v = check_word_history_events(&h);
        assert_eq!(v.len(), 1);
        match &v[0] {
            Violation::History { detail, .. } => {
                assert!(detail.contains("nobody produced"), "{detail}");
            }
            other => panic!("wrong violation: {other:?}"),
        }
    }

    #[test]
    fn duplicate_consumption_is_flagged() {
        // Two successful RMWs both observed 1: the first's effect was
        // acknowledged but lost.
        let h = [
            wev(
                WordOp::Rmw {
                    read: 0,
                    written: 1,
                },
                0,
                Some(10),
                true,
            ),
            wev(
                WordOp::Rmw {
                    read: 1,
                    written: 2,
                },
                15,
                Some(25),
                true,
            ),
            wev(
                WordOp::Rmw {
                    read: 1,
                    written: 3,
                },
                30,
                Some(40),
                true,
            ),
        ];
        let v = check_word_history_events(&h);
        assert_eq!(v.len(), 1, "{v:?}");
        match &v[0] {
            Violation::History { detail, .. } => {
                assert!(detail.contains("consumed the same value"), "{detail}");
            }
            other => panic!("wrong violation: {other:?}"),
        }
    }

    #[test]
    fn opaque_event_exempts_its_word() {
        // The failed RMW may have applied anything: both the phantom read
        // and the duplicate consumption become explicable, so the slot is
        // skipped entirely.
        let h = [
            wev(WordOp::Opaque, 0, None, false),
            wev(
                WordOp::Rmw {
                    read: 7,
                    written: 8,
                },
                20,
                Some(30),
                true,
            ),
            wev(
                WordOp::Rmw {
                    read: 7,
                    written: 9,
                },
                40,
                Some(50),
                true,
            ),
        ];
        assert!(check_word_history_events(&h).is_empty());
    }

    #[test]
    fn repeated_produced_values_disable_uniqueness() {
        // A write re-produces 1 after the first RMW consumed it, so two
        // consumptions of 1 are legal — and the checker must notice the
        // produced multiset is no longer distinct.
        let h = [
            wev(
                WordOp::Rmw {
                    read: 0,
                    written: 1,
                },
                0,
                Some(10),
                true,
            ),
            wev(
                WordOp::Rmw {
                    read: 1,
                    written: 2,
                },
                15,
                Some(25),
                true,
            ),
            wev(WordOp::Write { value: 1 }, 30, Some(35), true),
            wev(
                WordOp::Rmw {
                    read: 1,
                    written: 2,
                },
                40,
                Some(50),
                true,
            ),
        ];
        assert!(check_word_history_events(&h).is_empty());
    }

    #[test]
    fn failed_write_remains_a_candidate_producer() {
        // The lost scatter word may have landed: reading it is legal.
        let h = [
            wev(WordOp::Write { value: 5 }, 0, None, false),
            wev(WordOp::Read { value: 5 }, 20, Some(30), true),
            wev(WordOp::Read { value: 0 }, 40, Some(50), true),
        ];
        assert!(check_word_history_events(&h).is_empty());
    }

    #[test]
    fn producer_must_precede_observer_completion() {
        // The only producer of 9 was issued after the read finished.
        let h = [
            wev(WordOp::Read { value: 9 }, 0, Some(10), true),
            wev(
                WordOp::Rmw {
                    read: 0,
                    written: 9,
                },
                20,
                Some(30),
                true,
            ),
        ];
        let v = check_word_history_events(&h);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn word_recovery_reproduces_zero_and_relaxes_uniqueness() {
        // RMW consumes the initial zero; the crash re-zeroes the word; a
        // post-recovery RMW legally consumes zero *again*.
        let h = [
            wev(
                WordOp::Rmw {
                    read: 0,
                    written: 1,
                },
                0,
                Some(10),
                true,
            ),
            wev(
                WordOp::Rmw {
                    read: 0,
                    written: 2,
                },
                30,
                Some(40),
                true,
            ),
        ];
        assert_eq!(check_word_history_events(&h).len(), 1);
        let recovers = [(0x40u64, Time::from_ns(20))];
        assert!(check_word_history_events_with_recovery(&h, &recovers).is_empty());
        // Recovery on a different block changes nothing.
        let other = [(0x9999u64, Time::from_ns(20))];
        assert_eq!(check_word_history_events_with_recovery(&h, &other).len(), 1);
    }

    #[test]
    fn distinct_words_are_independent() {
        let mut a = wev(
            WordOp::Rmw {
                read: 0,
                written: 1,
            },
            0,
            Some(10),
            true,
        );
        a.offset = 0;
        let mut b = wev(
            WordOp::Rmw {
                read: 1,
                written: 2,
            },
            20,
            Some(30),
            true,
        );
        b.offset = 16; // nobody produced 1 at offset 16
        let v = check_word_history_events(&[a, b]);
        assert_eq!(v.len(), 1);
    }
}
