//! The home-based ownership directory.
//!
//! Each block's *home* locality (encoded in its GVA) is the authoritative
//! record of who currently owns the block. Initiators that bounce off a
//! stale owner query the home; migrations commit by updating the home.
//! Entries carry generation numbers so late-arriving updates never regress
//! ownership.
//!
//! Backed by [`netsim::flatmap::FlatTable`] so directory queries share the
//! single-probe fast path (and its telemetry) with the other translation
//! structures.

use netsim::flatmap::FlatTable;
use netsim::LocalityId;

/// An authoritative ownership record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OwnerRec {
    /// Current owner of the block.
    pub owner: LocalityId,
    /// Current migration generation.
    pub generation: u32,
}

/// Seed for the directory's flat table (fixed: deterministic runs).
const DIR_SEED: u64 = 0xd12_5eed;

/// The directory shard held by one home locality.
pub struct Directory {
    map: FlatTable<OwnerRec>,
    lookups: u64,
    updates: u64,
}

impl Default for Directory {
    fn default() -> Directory {
        Directory::new()
    }
}

impl Directory {
    /// An empty shard.
    pub fn new() -> Directory {
        Directory {
            map: FlatTable::with_seed(DIR_SEED),
            lookups: 0,
            updates: 0,
        }
    }

    /// Register a freshly allocated block owned by `owner` at generation 1.
    pub fn register(&mut self, block_key: u64, owner: LocalityId) {
        let prev = self.map.insert(
            block_key,
            OwnerRec {
                owner,
                generation: 1,
            },
        );
        debug_assert!(prev.is_none(), "directory double-register {block_key:#x}");
    }

    /// Authoritative lookup. Panics on unknown blocks: the home *must* know
    /// every block homed at it (allocation registers synchronously).
    pub fn lookup(&mut self, block_key: u64) -> OwnerRec {
        self.lookups += 1;
        *self
            .map
            .get(block_key)
            .unwrap_or_else(|| panic!("directory lookup of unknown block {block_key:#x}"))
    }

    /// Commit a migration: newer generations win, stale updates are ignored
    /// (they can arrive out of order through the network). Returns whether
    /// the update was applied.
    pub fn update(&mut self, block_key: u64, rec: OwnerRec) -> bool {
        self.updates += 1;
        let e = self
            .map
            .get_mut(block_key)
            .unwrap_or_else(|| panic!("directory update of unknown block {block_key:#x}"));
        if rec.generation > e.generation {
            *e = rec;
            true
        } else {
            false
        }
    }

    /// Counting lookup that tolerates unknown blocks — the membership
    /// plane's variant of [`Directory::lookup`]: while a join slice, drain
    /// hand-off, or crash take-over is in flight, a home may legitimately
    /// be asked about a block whose record now lives elsewhere.
    pub fn lookup_opt(&mut self, block_key: u64) -> Option<OwnerRec> {
        self.lookups += 1;
        self.map.get(block_key).copied()
    }

    /// Non-counting read of an ownership record (diagnostics/tests).
    pub fn peek(&self, block_key: u64) -> Option<OwnerRec> {
        self.map.peek(block_key).copied()
    }

    /// Install a record transferred from another shard (join slice, drain
    /// hand-off, crash census). Inserts if absent; otherwise newer
    /// generations win, exactly like [`Directory::update`].
    pub fn install(&mut self, block_key: u64, rec: OwnerRec) {
        self.updates += 1;
        match self.map.get_mut(block_key) {
            Some(e) => {
                if rec.generation > e.generation {
                    *e = rec;
                }
            }
            None => {
                self.map.insert(block_key, rec);
            }
        }
    }

    /// All records in this shard, sorted by block key (deterministic order
    /// for hand-off batches and crash censuses).
    pub fn records(&self) -> Vec<(u64, OwnerRec)> {
        let mut v: Vec<(u64, OwnerRec)> = self.map.iter().map(|(k, r, _)| (k, *r)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Drop every record (the shard's duty moved wholesale to a take-over
    /// locality, or the locality crashed).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Forget a freed block.
    pub fn unregister(&mut self, block_key: u64) -> Option<OwnerRec> {
        self.map.remove(block_key)
    }

    /// Blocks registered at this shard.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no blocks are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(lookups, updates)` served.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut d = Directory::new();
        d.register(5, 2);
        assert_eq!(
            d.lookup(5),
            OwnerRec {
                owner: 2,
                generation: 1
            }
        );
        assert_eq!(d.stats(), (1, 0));
    }

    #[test]
    fn update_applies_newer_only() {
        let mut d = Directory::new();
        d.register(5, 2);
        assert!(d.update(
            5,
            OwnerRec {
                owner: 3,
                generation: 2
            }
        ));
        // A stale (reordered) update must not regress ownership.
        assert!(!d.update(
            5,
            OwnerRec {
                owner: 9,
                generation: 2
            }
        ));
        assert!(!d.update(
            5,
            OwnerRec {
                owner: 9,
                generation: 1
            }
        ));
        assert_eq!(d.lookup(5).owner, 3);
        assert!(d.update(
            5,
            OwnerRec {
                owner: 4,
                generation: 3
            }
        ));
        assert_eq!(d.lookup(5).owner, 4);
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn lookup_unknown_panics() {
        let mut d = Directory::new();
        d.lookup(1);
    }

    #[test]
    fn unregister() {
        let mut d = Directory::new();
        d.register(5, 2);
        assert!(d.unregister(5).is_some());
        assert!(d.is_empty());
        assert!(d.unregister(5).is_none());
    }
}
