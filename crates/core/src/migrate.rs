//! The block-migration protocol.
//!
//! Migration is what AGAS buys over PGAS, and handling it cheaply is what
//! the network-managed design buys over software AGAS. The protocol:
//!
//! ```text
//!  requester ──MigRequest──▶ home ──MigRequest──▶ owner
//!                                                   │ pins drained?
//!                                                   │ BTT→Moving, NIC→forward-tombstone
//!                                                   ▼
//!                                          new owner ◀──MigData(bytes, gen+1)
//!                                                   │ install BTT (+NIC entry)
//!                                                   ├──DirUpdate──▶ home
//!                                                   ◀──DirUpdateAck─┘
//!                                                   ├──MigAck──▶ old owner (drain queued accesses)
//!                                                   └──MigDone──▶ requester
//! ```
//!
//! In-flight traffic during the window:
//! * network-managed: the old owner's NIC holds a **forwarding tombstone**,
//!   so RDMA ops chase the block with one extra hop (or NACK back to the
//!   initiator when forwarding is disabled — ablation A3);
//! * software: accesses arriving at the old owner queue against the Moving
//!   entry and are re-sent to the new owner on MigAck;
//! * stragglers that arrive after the tombstone/queue window bounce and
//!   re-resolve through the home, whose record is updated before MigDone.

use crate::gva::Gva;
use crate::{GasMode, GasMsg, GasWorld, MovingState, PendingInstall};
use netsim::{send_user, Desc, Engine, LocalityId, OpId, PushOutcome, Time, XlateEntry};

const MAX_ROUTE_HOPS: u8 = 64;

/// Send one migration/free *control* message from `src` to `dst`.
///
/// With [`crate::GasConfig::ctrl_ring`] set, the message posts into the
/// sender's per-peer control ring and shares a doorbell with other control
/// traffic toward the same peer — batches travel as one
/// [`GasMsg::CtrlBatch`] wire message. With rings off (the default) this
/// is exactly the old ad-hoc `send_user`, so every golden schedule is
/// unchanged. Bulk `MigData` payloads and queued data-path accesses never
/// ride the control ring.
pub(crate) fn send_ctrl<S: GasWorld>(
    eng: &mut Engine<S>,
    src: LocalityId,
    dst: LocalityId,
    bytes: u32,
    msg: GasMsg,
) {
    let now = eng.now();
    let g = eng.state.gas(src);
    let Some(rings) = g.ctrl_rings.as_mut() else {
        send_user(eng, src, dst, bytes, S::wrap_gas(msg));
        return;
    };
    netsim::telemetry::record_migration_ring(1);
    match rings.push(
        dst,
        Desc {
            item: msg,
            bytes,
            kind: "migrate",
            enqueued: now,
        },
    ) {
        PushOutcome::Flush => ctrl_doorbell(eng, src, dst),
        PushOutcome::Armed(epoch) => {
            // Arm the doorbell timer on the *sender's* lane; the epoch
            // guard stands the timer down if a flush got there first.
            let delay = rings.effective_delay(dst);
            eng.schedule_at_loc(now + delay, src, move |eng| {
                let due = eng
                    .state
                    .gas(src)
                    .ctrl_rings
                    .as_ref()
                    .is_some_and(|r| r.timer_due(dst, epoch));
                if due {
                    ctrl_doorbell(eng, src, dst);
                }
            });
        }
        PushOutcome::Buffered => {}
    }
}

/// Ring the control-ring doorbell toward `dst`: drain the ring and put
/// the whole batch on the wire as one message.
fn ctrl_doorbell<S: GasWorld>(eng: &mut Engine<S>, src: LocalityId, dst: LocalityId) {
    let batch = eng
        .state
        .gas(src)
        .ctrl_rings
        .as_mut()
        .map_or_else(Vec::new, |r| r.drain(dst));
    if batch.is_empty() {
        return;
    }
    let bytes: u32 = batch.iter().map(|d| d.bytes).sum();
    let mut msgs: Vec<GasMsg> = batch.into_iter().map(|d| d.item).collect();
    let wire = if msgs.len() == 1 {
        msgs.pop().expect("one-element batch")
    } else {
        GasMsg::CtrlBatch(msgs)
    };
    send_user(eng, src, dst, bytes, S::wrap_gas(wire));
}

/// Request that `gva`'s block move to `dst`. Completion arrives via
/// [`GasWorld::gas_migrate_done`] with `ctx`. Panics in PGAS mode (static
/// placement is the point of PGAS — this is experiment E8's contrast).
pub fn migrate_block<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    gva: Gva,
    dst: LocalityId,
    ctx: OpId,
) {
    assert!(
        eng.state.gas_mode().supports_migration(),
        "migration requested under PGAS"
    );
    let block = gva.block_key();
    // Membership may have re-homed the block's directory record; aim the
    // request at whoever serves the home role in this locality's view.
    let home = eng.state.gas_ref(loc).member.resolve(block, gva.home());
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    send_ctrl(
        eng,
        loc,
        home,
        ctrl,
        GasMsg::MigRequest {
            block,
            dst,
            ctx,
            reply_to: loc,
            hops: 0,
        },
    );
}

/// A migration request arrived at `at` (the home, the owner, or a stale
/// former owner).
pub(crate) fn on_mig_request<S: GasWorld>(
    eng: &mut Engine<S>,
    at: LocalityId,
    block: u64,
    dst: LocalityId,
    ctx: OpId,
    reply_to: LocalityId,
    hops: u8,
) {
    if hops >= MAX_ROUTE_HOPS {
        // A request that chased this long is stale or forged: drop it and
        // count the violation (the requester's deadline sweep reclaims it).
        eng.state.gas(at).stats.protocol_violations += 1;
        return;
    }
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    let g = eng.state.gas(at);
    if dst != at && g.member.is_enabled() && g.member.state_of(dst) != crate::MemberState::Active {
        // The destination left (or is leaving) the cluster between request
        // and arrival: complete as a no-op rather than strand the block on
        // a dying locality. The requester's ctx resolves normally.
        send_ctrl(eng, at, reply_to, ctrl, GasMsg::MigDone { ctx, block });
        return;
    }
    let g = eng.state.gas(at);
    if let Some(entry) = g.btt.lookup(block) {
        if dst == at {
            // Already here: trivially complete.
            send_ctrl(eng, at, reply_to, ctrl, GasMsg::MigDone { ctx, block });
            return;
        }
        if entry.pins > 0 {
            g.deferred_migs
                .entry(block)
                .or_default()
                .push((dst, ctx, reply_to));
            return;
        }
        if g.moving.contains_key(&block) {
            // A hand-off is already in flight; chase it with exponential
            // backoff so a churning block cannot exhaust the hop budget.
            let backoff = g.cfg.retry_backoff * (1u64 << hops.min(12));
            resend_request_via_home(eng, at, block, dst, ctx, reply_to, hops, backoff);
            return;
        }
        start_handoff(eng, at, block, dst, ctx, reply_to);
        return;
    }
    let serving = g.member.resolve(block, Gva(block).home());
    if at == serving {
        // Authoritative routing through the directory (software cost).
        let service = eng.state.gas(at).cfg.dir_lookup;
        let now = eng.now();
        let (_, finish) = eng.state.cpu(at).admit(now, service);
        {
            let l = eng.state.cluster().loc_mut(at);
            l.counters.cpu_busy += service;
            l.counters.dir_lookups += 1;
        }
        eng.schedule_at(finish, move |eng| {
            let g = eng.state.gas(at);
            let rec = if g.member.is_enabled() {
                g.dir.lookup_opt(block)
            } else {
                Some(g.dir.lookup(block))
            };
            let Some(rec) = rec else {
                // Record in flight to us (hand-off racing the request):
                // re-chase after a backoff so the hop budget isn't burned.
                let backoff = eng.state.gas(at).cfg.retry_backoff * (1u64 << hops.min(12));
                resend_request_via_home(eng, at, block, dst, ctx, reply_to, hops, backoff);
                return;
            };
            let owner = rec.owner;
            let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
            let next = if owner == at {
                Gva(block).home()
            } else {
                owner
            };
            send_ctrl(
                eng,
                at,
                next,
                ctrl,
                GasMsg::MigRequest {
                    block,
                    dst,
                    ctx,
                    reply_to,
                    hops: hops + 1,
                },
            );
        });
    } else {
        // Stale delivery: bounce through the home, backing off as the chase
        // lengthens (the block is actively churning).
        let backoff = eng.state.gas(at).cfg.retry_backoff * (1u64 << hops.min(12));
        resend_request_via_home(eng, at, block, dst, ctx, reply_to, hops, backoff);
    }
}

#[allow(clippy::too_many_arguments)]
fn resend_request_via_home<S: GasWorld>(
    eng: &mut Engine<S>,
    at: LocalityId,
    block: u64,
    dst: LocalityId,
    ctx: OpId,
    reply_to: LocalityId,
    hops: u8,
    delay: Time,
) {
    eng.schedule(delay, move |eng| {
        // Resolve the serving home at *send* time: by the time a backoff
        // fires, a drain hand-off or crash takeover may have moved the
        // record, and re-aiming at a Left locality would strand the chase.
        let home = eng
            .state
            .gas_ref(at)
            .member
            .resolve(block, Gva(block).home());
        let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
        send_ctrl(
            eng,
            at,
            home,
            ctrl,
            GasMsg::MigRequest {
                block,
                dst,
                ctx,
                reply_to,
                hops: hops + 1,
            },
        );
    });
}

/// Begin the hand-off at the current owner.
fn start_handoff<S: GasWorld>(
    eng: &mut Engine<S>,
    at: LocalityId,
    block: u64,
    dst: LocalityId,
    ctx: OpId,
    reply_to: LocalityId,
) {
    let mode = eng.state.gas_mode();
    let g = eng.state.gas(at);
    // One BTT probe: snapshot the entry and flip it to Moving in place
    // (the old lookup + set_moving pair probed twice).
    let Some(e) = g.btt.lookup_mut(block) else {
        // The block left between routing and hand-off: a stale request.
        g.stats.protocol_violations += 1;
        return;
    };
    assert_eq!(e.pins, 0, "cannot move a pinned block");
    let entry = *e;
    e.state = crate::BlockState::Moving;
    g.stats.migrations_started += 1;
    g.moving.insert(
        block,
        MovingState {
            dst,
            queued: Vec::new(),
        },
    );
    if mode == GasMode::AgasNetwork {
        // The paper's mechanism: the NIC keeps a forwarding tombstone so
        // in-flight one-sided traffic chases the block in hardware.
        eng.state
            .cluster()
            .loc_mut(at)
            .nic
            .xlate
            .retire_to_forward(block, dst);
    }
    let size = 1usize << entry.class;
    let data = eng
        .state
        .cluster()
        .mem(at)
        .read(entry.base, size)
        .expect("BTT base out of arena")
        .to_vec();
    eng.state
        .cluster()
        .mem_mut(at)
        .free_block(entry.base, entry.class);
    // The block's remembered AMO completions move with it: a retry that
    // chases the forward to the new owner must still deduplicate.
    let amo_log = eng
        .state
        .cluster()
        .loc_mut(at)
        .nic
        .amo
        .take_for_block(block);
    eng.state.cluster().loc_mut(at).counters.migrations_out += 1;
    send_user(
        eng,
        at,
        dst,
        size as u32,
        S::wrap_gas(GasMsg::MigData {
            block,
            class: entry.class,
            generation: entry.generation + 1,
            data,
            amo_log,
            src: at,
            ctx,
            reply_to,
        }),
    );
}

/// Block bytes arrived at the new owner: install, then commit at the home.
#[allow(clippy::too_many_arguments)]
pub(crate) fn on_mig_data<S: GasWorld>(
    eng: &mut Engine<S>,
    at: LocalityId,
    block: u64,
    class: u8,
    generation: u32,
    data: Vec<u8>,
    amo_log: Vec<(netsim::AmoKey, netsim::AmoResult)>,
    src: LocalityId,
    ctx: OpId,
    reply_to: LocalityId,
) {
    // A hand-off whose source has since crashed must not install: the
    // recovery path already re-issued the block at a dominating
    // generation, and installing these bytes would resurrect a stale copy.
    if eng.state.gas_ref(at).member.is_crashed(src) {
        eng.state.gas(at).stats.protocol_violations += 1;
        return;
    }
    // Installation is software work (allocate, copy, table updates).
    let (service, per_byte) = {
        let g = eng.state.gas(at);
        (g.cfg.sw_handler, g.cfg.copy_per_byte_ps)
    };
    let service = service + Time::from_ps(data.len() as u64 * per_byte);
    let now = eng.now();
    let (_, finish) = eng.state.cpu(at).admit(now, service);
    eng.state.cluster().loc_mut(at).counters.cpu_busy += service;
    eng.schedule_at(finish, move |eng| {
        let phys = eng
            .state
            .cluster()
            .mem_mut(at)
            .alloc_block(class)
            .expect("arena exhausted installing migrated block");
        eng.state
            .cluster()
            .mem_mut(at)
            .write(phys, &data)
            .expect("install write failed");
        eng.state
            .cluster()
            .loc_mut(at)
            .nic
            .amo
            .absorb(block, amo_log);
        let g = eng.state.gas(at);
        g.btt.insert(block, phys, class, generation);
        g.cache.update(
            block,
            crate::OwnerHint {
                owner: at,
                generation,
            },
        );
        g.pending_installs.insert(
            block,
            PendingInstall {
                ctx,
                reply_to,
                old_owner: src,
            },
        );
        if eng.state.gas_mode() == GasMode::AgasNetwork {
            eng.state.cluster().install_xlate(
                at,
                block,
                XlateEntry {
                    base: phys,
                    len: 1u64 << class,
                    generation,
                },
            );
        }
        eng.state.cluster().loc_mut(at).counters.migrations_in += 1;
        let home = eng
            .state
            .gas_ref(at)
            .member
            .resolve(block, Gva(block).home());
        let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
        send_ctrl(
            eng,
            at,
            home,
            ctrl,
            GasMsg::DirUpdate {
                block,
                owner: at,
                generation,
                reply_to: at,
            },
        );
    });
}

/// The home committed the new ownership: notify the old owner (drain its
/// queue) and the requester.
pub(crate) fn on_dir_update_ack<S: GasWorld>(eng: &mut Engine<S>, at: LocalityId, block: u64) {
    let Some(pi) = eng.state.gas(at).pending_installs.remove(&block) else {
        // Duplicate or forged ack: nothing is waiting on it.
        eng.state.gas(at).stats.protocol_violations += 1;
        return;
    };
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    send_ctrl(eng, at, pi.old_owner, ctrl, GasMsg::MigAck { block });
    send_ctrl(
        eng,
        at,
        pi.reply_to,
        ctrl,
        GasMsg::MigDone { ctx: pi.ctx, block },
    );
}

/// The new owner is installed: the old owner retires its Moving entry and
/// re-sends every access that queued during the window.
pub(crate) fn on_mig_ack<S: GasWorld>(eng: &mut Engine<S>, at: LocalityId, block: u64) {
    let Some(ms) = eng.state.gas(at).moving.remove(&block) else {
        // Duplicate or forged ack: the hand-off already retired.
        eng.state.gas(at).stats.protocol_violations += 1;
        return;
    };
    eng.state.gas(at).btt.remove(block);
    for msg in ms.queued {
        let wire = match &msg {
            GasMsg::SwPut { data, .. } => data.len() as u32,
            GasMsg::SwGet { .. } => eng.state.cluster_ref().config.ctrl_bytes,
            GasMsg::SwAmo { amo, .. } => {
                eng.state.cluster_ref().config.ctrl_bytes + 8 * amo.wire_words() as u32
            }
            _ => unreachable!("only software accesses queue"),
        };
        send_user(eng, at, ms.dst, wire, S::wrap_gas(msg));
    }
}

/// Free `gva`'s block at runtime. Completion arrives via
/// [`GasWorld::gas_free_done`] with `ctx`. The caller must guarantee no
/// operations are in flight against the block (freeing live data is the
/// distributed use-after-free; the simulator panics when it detects it).
pub fn free_block<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, gva: Gva, ctx: OpId) {
    let block = gva.block_key();
    let home = eng.state.gas_ref(loc).member.resolve(block, gva.home());
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    send_ctrl(
        eng,
        loc,
        home,
        ctrl,
        GasMsg::FreeRequest {
            block,
            ctx,
            reply_to: loc,
            hops: 0,
        },
    );
}

/// A free request arrived at `at` (the home, the owner, or a stale node).
pub(crate) fn on_free_request<S: GasWorld>(
    eng: &mut Engine<S>,
    at: LocalityId,
    block: u64,
    ctx: OpId,
    reply_to: LocalityId,
    hops: u8,
) {
    if hops >= MAX_ROUTE_HOPS {
        eng.state.gas(at).stats.protocol_violations += 1;
        return;
    }
    let g = eng.state.gas(at);
    if let Some(entry) = g.btt.lookup(block) {
        if entry.pins > 0 {
            g.deferred_frees
                .entry(block)
                .or_default()
                .push((ctx, reply_to));
            return;
        }
        if g.moving.contains_key(&block) {
            let backoff = g.cfg.retry_backoff * (1u64 << hops.min(12));
            eng.schedule(backoff, move |eng| {
                let home = eng
                    .state
                    .gas_ref(at)
                    .member
                    .resolve(block, Gva(block).home());
                let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
                send_ctrl(
                    eng,
                    at,
                    home,
                    ctrl,
                    GasMsg::FreeRequest {
                        block,
                        ctx,
                        reply_to,
                        hops: hops + 1,
                    },
                );
            });
            return;
        }
        commit_free(eng, at, block, ctx, reply_to);
        return;
    }
    let serving = g.member.resolve(block, Gva(block).home());
    if at == serving {
        let service = eng.state.gas(at).cfg.dir_lookup;
        let now = eng.now();
        let (_, finish) = eng.state.cpu(at).admit(now, service);
        {
            let l = eng.state.cluster().loc_mut(at);
            l.counters.cpu_busy += service;
            l.counters.dir_lookups += 1;
        }
        eng.schedule_at(finish, move |eng| {
            let g = eng.state.gas(at);
            let rec = if g.member.is_enabled() {
                g.dir.lookup_opt(block)
            } else {
                Some(g.dir.lookup(block))
            };
            let Some(rec) = rec else {
                // Record in flight to us (hand-off racing the free):
                // re-chase after a backoff.
                let backoff = eng.state.gas(at).cfg.retry_backoff * (1u64 << hops.min(12));
                eng.schedule(backoff, move |eng| {
                    let home = eng
                        .state
                        .gas_ref(at)
                        .member
                        .resolve(block, Gva(block).home());
                    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
                    send_ctrl(
                        eng,
                        at,
                        home,
                        ctrl,
                        GasMsg::FreeRequest {
                            block,
                            ctx,
                            reply_to,
                            hops: hops + 1,
                        },
                    );
                });
                return;
            };
            let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
            send_ctrl(
                eng,
                at,
                rec.owner,
                ctrl,
                GasMsg::FreeRequest {
                    block,
                    ctx,
                    reply_to,
                    hops: hops + 1,
                },
            );
        });
    } else {
        let backoff = eng.state.gas(at).cfg.retry_backoff * (1u64 << hops.min(12));
        eng.schedule(backoff, move |eng| {
            let home = eng
                .state
                .gas_ref(at)
                .member
                .resolve(block, Gva(block).home());
            let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
            send_ctrl(
                eng,
                at,
                home,
                ctrl,
                GasMsg::FreeRequest {
                    block,
                    ctx,
                    reply_to,
                    hops: hops + 1,
                },
            );
        });
    }
}

/// Release the block at its owner and retire the directory record.
fn commit_free<S: GasWorld>(
    eng: &mut Engine<S>,
    at: LocalityId,
    block: u64,
    ctx: OpId,
    reply_to: LocalityId,
) {
    let Some(entry) = eng.state.gas(at).btt.remove(block) else {
        // The block already left (racing free/migration): stale request.
        eng.state.gas(at).stats.protocol_violations += 1;
        return;
    };
    eng.state
        .cluster()
        .mem_mut(at)
        .free_block(entry.base, entry.class);
    eng.state.cluster().loc_mut(at).nic.xlate.invalidate(block);
    eng.state.gas(at).cache.invalidate(block);
    if eng.state.gas_mode() == GasMode::Pgas {
        // Unreachable (free routes via AGAS machinery), kept for clarity.
    }
    let home = eng
        .state
        .gas_ref(at)
        .member
        .resolve(block, Gva(block).home());
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    send_ctrl(
        eng,
        at,
        home,
        ctrl,
        GasMsg::DirUnregister {
            block,
            ctx,
            reply_to,
        },
    );
}

/// The home retires the record and notifies the requester.
pub(crate) fn on_dir_unregister<S: GasWorld>(
    eng: &mut Engine<S>,
    at: LocalityId,
    block: u64,
    ctx: OpId,
    reply_to: LocalityId,
) {
    let service = eng.state.gas(at).cfg.dir_lookup;
    let now = eng.now();
    let (_, finish) = eng.state.cpu(at).admit(now, service);
    {
        let l = eng.state.cluster().loc_mut(at);
        l.counters.cpu_busy += service;
        l.counters.dir_lookups += 1;
    }
    eng.schedule_at(finish, move |eng| {
        let g = eng.state.gas(at);
        if g.dir.unregister(block).is_none() && g.member.is_enabled() {
            // The record moved with a membership hand-off; retire it at
            // whoever serves the home role now (if that's still us, the
            // record is simply gone and the free already took effect).
            let serving = g.member.resolve(block, Gva(block).home());
            if serving != at {
                let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
                send_ctrl(
                    eng,
                    at,
                    serving,
                    ctrl,
                    GasMsg::DirUnregister {
                        block,
                        ctx,
                        reply_to,
                    },
                );
                return;
            }
        }
        eng.state.pgas().remove(&block);
        let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
        send_ctrl(eng, at, reply_to, ctrl, GasMsg::FreeDone { ctx, block });
    });
}

/// Called when a block's pin count drops to zero: start one deferred
/// migration (later requests re-chase through the home).
pub(crate) fn retry_deferred<S: GasWorld>(eng: &mut Engine<S>, at: LocalityId, block: u64) {
    // Deferred frees take priority: once freed, nothing else can apply.
    if let Some(frees) = eng.state.gas(at).deferred_frees.remove(&block) {
        let mut frees = frees.into_iter();
        if let Some((ctx, reply_to)) = frees.next() {
            assert!(
                frees.next().is_none(),
                "double free of block {block:#x} detected"
            );
            eng.state.gas(at).deferred_migs.remove(&block);
            commit_free(eng, at, block, ctx, reply_to);
            return;
        }
    }
    let Some(mut waiting) = eng.state.gas(at).deferred_migs.remove(&block) else {
        return;
    };
    if waiting.is_empty() {
        return;
    }
    let (dst, ctx, reply_to) = waiting.remove(0);
    for (dst2, ctx2, reply2) in waiting {
        // Re-route the rest through the home; they will find the new owner.
        resend_request_via_home(eng, at, block, dst2, ctx2, reply2, 0, Time::ZERO);
    }
    if dst == at {
        let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
        send_ctrl(eng, at, reply_to, ctrl, GasMsg::MigDone { ctx, block });
    } else {
        start_handoff(eng, at, block, dst, ctx, reply_to);
    }
}
