//! The elastic membership plane: join, drain, and crash-recovery for the
//! locality set (DESIGN.md §3.9).
//!
//! A cluster's locality set is fixed at boot (the simulator cannot grow a
//! [`netsim::Cluster`]), so elasticity is expressed as *states*: a locality
//! reserved at boot starts `Joining` (it serves nothing), becomes `Active`
//! when it **joins** (taking over a slice of directory duty from a donor),
//! steps through `Draining` while it evacuates every resident block over
//! the ordinary migration protocol, and ends `Left` (directory duty handed
//! to a take-over locality) or `Crashed` (links severed by the fault
//! plane, state torn down, home-directory blocks re-issued from a
//! [`crate::config::RecoveryPolicy`]).
//!
//! ```text
//!   Joining ──join──▶ Active ──drain──▶ Draining ──evacuated──▶ Left
//!                        │                  │
//!                        └──────crash───────┴──────▶ Crashed
//! ```
//!
//! Every transition is an engine *event*, scheduled per locality with
//! [`netsim::Engine::schedule_at_loc`] so a sharded replay executes the
//! same mutations on the same lanes at the same instants — the membership
//! chaos cells pin bit-identical trace hashes at 1/2/4/8 lanes.
//!
//! **Resolution.** Each locality keeps a [`MembershipView`]: the member
//! states, a `served_by` indirection (who answers for a departed
//! locality's directory shard), and per-block home overrides installed by
//! join slices, drain hand-offs, and crash censuses. The *serving home* of
//! a block is `resolve(block, encoded_home)`; an inert view (no membership
//! event ever fired) resolves to the encoded home with zero overhead, so
//! every pre-membership golden schedule is untouched. PGAS routing ignores
//! the view entirely — static placement cannot re-home.
//!
//! **Crash recovery.** Severing links is draw-free ([`netsim::FaultPlane`]
//! checks scheduled outages before consuming randomness), so survivor
//! traffic keeps its schedule. Survivors then purge NIC forward chains
//! transiting the dead hop, purge owner-cache hints naming it, and
//! re-issue lost blocks: each surviving home re-issues its own records
//! whose owner died, and the take-over locality re-issues the dead home's
//! census. Re-issued blocks are zero-filled with a large generation bump
//! (stale in-flight commits lose), and each re-issue is logged as a
//! [`HistKind::Recover`] event so the history checker accepts
//! post-recovery zeros.

use crate::gva::Gva;
use crate::migrate::send_ctrl;
use crate::{GasMode, GasMsg, GasWorld, HistEvent, HistKind, OwnerRec};
use netsim::{Engine, FaultPlan, FaultPlane, LocalityId, OpId, Time, XlateEntry};
use std::collections::{BTreeMap, BTreeSet};

/// Fault-plane seed used when a crash must install a plane on a cluster
/// that booted without one (fixed: deterministic runs).
const CRASH_FAULT_SEED: u64 = 0x000c_4a54_5eed;

/// Lifecycle state of one locality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MemberState {
    /// Reserved at boot, not yet serving: no blocks, no directory duty.
    Joining,
    /// Full member.
    #[default]
    Active,
    /// Evacuating resident blocks; still serving its directory shard.
    Draining,
    /// Departed cleanly: blocks evacuated, directory duty handed off.
    Left,
    /// Failed: links severed, state lost, blocks recovered elsewhere.
    Crashed,
}

impl MemberState {
    /// Short label for quiescence reports.
    pub fn label(self) -> &'static str {
        match self {
            MemberState::Joining => "joining",
            MemberState::Active => "active",
            MemberState::Draining => "draining",
            MemberState::Left => "left",
            MemberState::Crashed => "crashed",
        }
    }
}

/// One membership transition, as broadcast to every locality (directly as
/// a scheduled event for join/crash, over the wire as [`GasMsg::Member`]
/// for a drain's final hand-off).
#[derive(Clone, Debug)]
pub struct MemberUpdate {
    /// The locality changing state.
    pub loc: LocalityId,
    /// Its new state.
    pub state: MemberState,
    /// Who serves its directory duty from now on (`None`: itself).
    pub served_by: Option<LocalityId>,
    /// Blocks whose serving home moves with this update (to `served_by`
    /// when set, otherwise to `loc` — the join-slice case).
    pub rehomed: Vec<u64>,
}

/// One locality's view of the membership plane.
///
/// Inert by default: an empty `states` vector means no membership event
/// ever reached this locality, [`MembershipView::resolve`] returns the
/// encoded home unconditionally, and no schedule changes.
#[derive(Debug, Default)]
pub struct MembershipView {
    /// Per-locality states (empty until the first membership event).
    pub states: Vec<MemberState>,
    /// Directory-duty indirection: `served_by[l]` answers for `l`'s shard
    /// (identity while `l` serves its own).
    pub served_by: Vec<LocalityId>,
    /// Per-block serving-home overrides (join slices, hand-offs, censuses).
    pub home_override: BTreeMap<u64, LocalityId>,
    /// Blocks this locality is currently evacuating (drain bookkeeping;
    /// completions are intercepted at [`GasMsg::MigDone`]).
    pub evac: BTreeSet<u64>,
}

impl MembershipView {
    /// Grow the view to `n` localities (all `Active`, serving themselves).
    pub fn ensure(&mut self, n: usize) {
        if self.states.len() < n {
            self.states.resize(n, MemberState::Active);
        }
        while self.served_by.len() < n {
            self.served_by.push(self.served_by.len() as LocalityId);
        }
    }

    /// Has any membership event reached this view?
    pub fn is_enabled(&self) -> bool {
        !self.states.is_empty()
    }

    /// State of `loc` (Active while the view is inert).
    pub fn state_of(&self, loc: LocalityId) -> MemberState {
        self.states
            .get(loc as usize)
            .copied()
            .unwrap_or(MemberState::Active)
    }

    /// Is `loc` crashed in this view?
    pub fn is_crashed(&self, loc: LocalityId) -> bool {
        self.state_of(loc) == MemberState::Crashed
    }

    /// The locality currently serving `block`'s directory record, chasing
    /// the `served_by` indirection from the per-block override (or the
    /// GVA-encoded home). Bounded by the locality count, so a cyclic
    /// hand-off chain cannot hang resolution.
    pub fn resolve(&self, block: u64, encoded_home: LocalityId) -> LocalityId {
        if self.states.is_empty() {
            return encoded_home;
        }
        let mut cur = self
            .home_override
            .get(&block)
            .copied()
            .unwrap_or(encoded_home);
        for _ in 0..self.served_by.len() {
            let next = self.served_by.get(cur as usize).copied().unwrap_or(cur);
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    /// Apply one transition to this view (`n` = cluster size).
    pub fn apply(&mut self, n: usize, u: &MemberUpdate) {
        self.ensure(n);
        self.states[u.loc as usize] = u.state;
        if let Some(t) = u.served_by {
            self.served_by[u.loc as usize] = t;
        }
        let target = u.served_by.unwrap_or(u.loc);
        for &b in &u.rehomed {
            self.home_override.insert(b, target);
        }
    }

    /// One-line state summary for quiescence reports; `None` while inert.
    pub fn render(&self) -> Option<String> {
        if !self.is_enabled() {
            return None;
        }
        let states: Vec<String> = self
            .states
            .iter()
            .enumerate()
            .map(|(l, s)| format!("{l}:{}", s.label()))
            .collect();
        Some(format!(
            "membership: [{}] overrides={} evac={}",
            states.join(" "),
            self.home_override.len(),
            self.evac.len()
        ))
    }
}

/// The sentinel op handle carried by a drain-evacuation migration: the
/// completion is intercepted at [`GasMsg::MigDone`] instead of reaching a
/// user callback. Generation 0 never collides with table-allocated ids.
pub(crate) fn evac_ctx(block: u64) -> OpId {
    OpId::from_parts((block & 0xffff_ffff) as u32, 0)
}

/// The next `Active` locality after `loc` in `view` (wrapping), if any.
fn next_active(view: &MembershipView, loc: LocalityId, n: usize) -> Option<LocalityId> {
    (1..n as LocalityId)
        .map(|i| (loc + i) % n as LocalityId)
        .find(|&cand| view.state_of(cand) == MemberState::Active)
}

// ------------------------------------------------------------ driver phase
//
// The functions below are called from driver code (between engine runs, or
// via `ShardedEngine::drive`): they may read any locality's state to plan
// the transition, but every *mutation* is packaged as a per-locality event
// so sharded replay stays bit-identical.

/// Immediately set `loc`'s state in every view (driver phase, before
/// traffic) — marks a boot-reserved locality `Joining` so workloads skip
/// it until [`join`] fires.
pub fn mark<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, state: MemberState) {
    let n = eng.state.cluster_ref().len();
    for l in 0..n as LocalityId {
        let g = eng.state.gas(l);
        g.member.ensure(n);
        g.member.states[loc as usize] = state;
    }
}

/// Bring `joiner` into the membership: it takes over every second record
/// of `donor`'s directory shard (the join slice), warms its NIC
/// translation table with forwards at the believed owners, and becomes
/// `Active` everywhere. Scheduled one tick out so the transition is an
/// ordinary engine event.
pub fn join<S: GasWorld>(eng: &mut Engine<S>, joiner: LocalityId, donor: LocalityId) {
    assert_ne!(joiner, donor, "a locality cannot donate to itself");
    let n = eng.state.cluster_ref().len();
    let mode = eng.state.gas_mode();
    let slice: Vec<(u64, OwnerRec)> = eng
        .state
        .gas(donor)
        .dir
        .records()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, r)| r)
        .collect();
    let t = eng.now() + Time::from_ns(1);
    let update = MemberUpdate {
        loc: joiner,
        state: MemberState::Active,
        served_by: None,
        rehomed: slice.iter().map(|&(b, _)| b).collect(),
    };
    for l in 0..n as LocalityId {
        let u = update.clone();
        eng.schedule_at_loc(t, l, move |eng| {
            let n = eng.state.cluster_ref().len();
            eng.state.gas(l).member.apply(n, &u);
        });
    }
    let warm = slice.clone();
    eng.schedule_at_loc(t, joiner, move |eng| {
        for &(b, rec) in &warm {
            eng.state.gas(joiner).dir.install(b, rec);
            if mode == GasMode::AgasNetwork && rec.owner != joiner {
                // Warm translation: a forward at the serving home lets
                // one-sided traffic chase straight to the believed owner
                // instead of paying a software miss first.
                eng.state
                    .cluster()
                    .loc_mut(joiner)
                    .nic
                    .xlate
                    .retire_to_forward(b, rec.owner);
            }
        }
        eng.state.gas(joiner).stats.blocks_rehomed += warm.len() as u64;
        netsim::telemetry::record_membership(1, 0, 0);
        netsim::telemetry::record_blocks_rehomed(warm.len() as u64);
    });
    let retired: Vec<u64> = slice.iter().map(|&(b, _)| b).collect();
    eng.schedule_at_loc(t, donor, move |eng| {
        for b in retired {
            eng.state.gas(donor).dir.unregister(b);
        }
    });
}

/// Start draining `d`: every view marks it `Draining` one tick out, and an
/// evacuation pump on `d` migrates resident blocks to the remaining
/// `Active` localities in policy-sized batches while user traffic keeps
/// flowing. When the last block (and in-flight hand-off) clears, `d`
/// hands its directory shard to a take-over locality and broadcasts
/// `Left`.
pub fn drain<S: GasWorld>(eng: &mut Engine<S>, d: LocalityId) {
    let n = eng.state.cluster_ref().len();
    let t = eng.now() + Time::from_ns(1);
    let update = MemberUpdate {
        loc: d,
        state: MemberState::Draining,
        served_by: None,
        rehomed: Vec::new(),
    };
    for l in 0..n as LocalityId {
        let u = update.clone();
        eng.schedule_at_loc(t, l, move |eng| {
            let n = eng.state.cluster_ref().len();
            eng.state.gas(l).member.apply(n, &u);
        });
    }
    eng.schedule_at_loc(t, d, move |eng| evac_pump(eng, d));
}

/// One evacuation round at a draining locality: finish the drain if
/// nothing is left, otherwise migrate the next batch of resident,
/// unpinned, not-yet-moving blocks and reschedule.
fn evac_pump<S: GasWorld>(eng: &mut Engine<S>, d: LocalityId) {
    let n = eng.state.cluster_ref().len();
    let (policy, interval) = {
        let g = eng.state.gas(d);
        if g.member.state_of(d) != MemberState::Draining {
            return; // crashed (or otherwise superseded) mid-drain
        }
        if g.btt.is_empty()
            && g.moving.is_empty()
            && g.member.evac.is_empty()
            && g.pending_installs.is_empty()
        {
            finish_drain(eng, d);
            return;
        }
        (g.cfg.recovery, g.cfg.recovery.evac_interval)
    };
    if !eng.state.gas_mode().supports_migration() {
        // PGAS cannot evacuate (static placement): the drain is
        // metadata-only — hand off directory duty and leave; the blocks
        // stay where the address map pinned them.
        finish_drain(eng, d);
        return;
    }
    let targets: Vec<LocalityId> = (0..n as LocalityId)
        .filter(|&l| l != d && eng.state.gas_ref(d).member.state_of(l) == MemberState::Active)
        .collect();
    if !targets.is_empty() {
        let g = eng.state.gas(d);
        let mut batch: Vec<u64> = g
            .btt
            .keys()
            .filter(|&b| {
                g.btt.is_resident(b)
                    && g.btt.lookup(b).is_some_and(|e| e.pins == 0)
                    && !g.moving.contains_key(&b)
                    && !g.member.evac.contains(&b)
            })
            .collect();
        batch.sort_unstable();
        batch.truncate(policy.evac_batch);
        for b in batch {
            eng.state.gas(d).member.evac.insert(b);
            let dst = targets[(b % targets.len() as u64) as usize];
            crate::migrate::migrate_block(eng, d, Gva(b), dst, evac_ctx(b));
        }
    }
    eng.schedule(interval, move |eng| evac_pump(eng, d));
}

/// The drain's final act, run at `d` once it holds no blocks: hand the
/// directory shard to the next `Active` locality and broadcast `Left`.
fn finish_drain<S: GasWorld>(eng: &mut Engine<S>, d: LocalityId) {
    let n = eng.state.cluster_ref().len();
    let Some(takeover) = next_active(&eng.state.gas_ref(d).member, d, n) else {
        return; // nobody left to serve the shard; stay Draining
    };
    let records = eng.state.gas(d).dir.records();
    let rehomed: Vec<u64> = records.iter().map(|&(b, _)| b).collect();
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    send_ctrl(
        eng,
        d,
        takeover,
        ctrl,
        GasMsg::DirHandoff { records, from: d },
    );
    let update = MemberUpdate {
        loc: d,
        state: MemberState::Left,
        served_by: Some(takeover),
        rehomed,
    };
    for l in 0..n as LocalityId {
        if l == d {
            continue;
        }
        let u = update.clone();
        send_ctrl(eng, d, l, ctrl, GasMsg::Member { update: u });
    }
    eng.state.gas(d).member.apply(n, &update);
    eng.state.gas(d).dir.clear();
    netsim::telemetry::record_membership(0, 1, 0);
}

/// Crash `x`: sever every link to and from it (draw-free — survivor
/// traffic keeps its schedule), tear down its state one tick out, and run
/// recovery at the survivors — NIC/cache hygiene plus deterministic
/// re-issue of the blocks whose only copy died with `x`, per the
/// [`crate::config::RecoveryPolicy`].
pub fn crash<S: GasWorld>(eng: &mut Engine<S>, x: LocalityId) {
    let n = eng.state.cluster_ref().len();
    let t = eng.now() + Time::from_ns(1);
    eng.state
        .cluster()
        .faults
        .get_or_insert_with(|| FaultPlane::new(FaultPlan::lossless(CRASH_FAULT_SEED)))
        .sever_locality(x, n, t);
    // The dead home's census, read at driver phase: the survivors agree on
    // exactly this record set (deterministic, sorted by block key).
    let census = eng.state.gas(x).dir.records();
    let takeover = next_active(&eng.state.gas_ref(x).member, x, n).expect("crash with no survivor");
    let mode = eng.state.gas_mode();
    eng.schedule_at_loc(t, x, move |eng| crash_teardown(eng, x));
    for l in 0..n as LocalityId {
        if l == x {
            continue;
        }
        let census = census.clone();
        eng.schedule_at_loc(t, l, move |eng| {
            crash_notice(eng, l, x, takeover, &census, mode);
        });
    }
    netsim::telemetry::record_membership(0, 0, 1);
}

/// `x`'s own last event: everything it held is gone. Pins die with it,
/// its arena blocks free (lane-local), its tables clear, and its pending
/// initiator ops vanish unobserved.
fn crash_teardown<S: GasWorld>(eng: &mut Engine<S>, x: LocalityId) {
    let n = eng.state.cluster_ref().len();
    {
        let g = eng.state.gas(x);
        g.member.ensure(n);
        g.member.states[x as usize] = MemberState::Crashed;
        g.member.evac.clear();
        g.moving.clear();
        g.pending_installs.clear();
        g.deferred_migs.clear();
        g.deferred_frees.clear();
        g.dir.clear();
        let _ = g.pending.drain_filter(|_, _| true);
    }
    let blocks = eng.state.gas(x).btt.take_all();
    for &(_, e) in &blocks {
        eng.state.cluster().mem_mut(x).free_block(e.base, e.class);
    }
    eng.state.cluster().loc_mut(x).nic.xlate.flush_live();
}

/// One survivor's crash handling: update the view, purge NIC forwards
/// transiting the dead hop and owner-cache hints naming it, then re-issue
/// lost blocks this locality is (or just became) the serving home for.
fn crash_notice<S: GasWorld>(
    eng: &mut Engine<S>,
    l: LocalityId,
    x: LocalityId,
    takeover: LocalityId,
    census: &[(u64, OwnerRec)],
    mode: GasMode,
) {
    let n = eng.state.cluster_ref().len();
    {
        let g = eng.state.gas(l);
        g.member.ensure(n);
        g.member.states[x as usize] = MemberState::Crashed;
        g.member.served_by[x as usize] = takeover;
        for &(b, _) in census {
            g.member.home_override.insert(b, takeover);
        }
    }
    // A forward chain transiting the dead hop would re-inject traffic
    // into a black hole until its TTL burned out; purge it now.
    let dropped = eng
        .state
        .cluster()
        .loc_mut(l)
        .nic
        .xlate
        .purge_forwards_via(x);
    if dropped > 0 {
        eng.state.gas(l).stats.stale_xlate_dropped += dropped;
        netsim::telemetry::record_stale_xlate_dropped(dropped);
    }
    eng.state.gas(l).cache.purge_owner(x);
    let policy = eng.state.gas(l).cfg.recovery;
    if !policy.reissue_home_blocks {
        return;
    }
    // Blocks homed *here* whose only copy died at x.
    let lost: Vec<(u64, OwnerRec)> = eng
        .state
        .gas(l)
        .dir
        .records()
        .into_iter()
        .filter(|&(_, rec)| rec.owner == x)
        .collect();
    for (b, rec) in lost {
        reissue_block(eng, l, b, rec.generation + policy.generation_bump, mode);
    }
    if l == takeover {
        // The dead home's shard is ours now: install the census, and
        // re-issue the records whose owner died with their home.
        for &(b, rec) in census {
            eng.state.gas(l).dir.install(b, rec);
            if rec.owner == x {
                reissue_block(eng, l, b, rec.generation + policy.generation_bump, mode);
            }
        }
    }
}

/// Deterministically re-issue one lost block at `l`: a zero-filled
/// replacement under a bumped generation, recorded as a
/// [`HistKind::Recover`] event so the checker accepts post-recovery
/// zeros. (Replica-sourced recovery is reserved in
/// [`crate::config::RecoveryPolicy::replicas`].)
fn reissue_block<S: GasWorld>(
    eng: &mut Engine<S>,
    l: LocalityId,
    block: u64,
    generation: u32,
    mode: GasMode,
) {
    if eng.state.gas(l).btt.lookup(block).is_some() {
        return; // already resident here (a racing hand-off won)
    }
    let class = Gva(block).class();
    let phys = eng
        .state
        .cluster()
        .mem_mut(l)
        .alloc_block(class)
        .expect("arena exhausted re-issuing a recovered block");
    {
        let g = eng.state.gas(l);
        g.btt.insert(block, phys, class, generation);
        g.dir.install(
            block,
            OwnerRec {
                owner: l,
                generation,
            },
        );
        g.stats.blocks_recovered += 1;
        if g.cfg.record_history {
            let now = eng.now();
            let g = eng.state.gas(l);
            g.history.push(HistEvent {
                kind: HistKind::Recover,
                block,
                offset: 0,
                len: 0,
                value: 0,
                issued: now,
                done: Some(now),
                ok: true,
                loc: l,
            });
        }
    }
    if mode == GasMode::AgasNetwork {
        eng.state.cluster().install_xlate(
            l,
            block,
            XlateEntry {
                base: phys,
                len: 1u64 << class,
                generation,
            },
        );
    }
    netsim::telemetry::record_blocks_recovered(1);
}

// ---------------------------------------------------------------- handlers

/// Handle a wire [`GasMsg::Member`] broadcast (a drain's `Left`).
pub(crate) fn on_member_update<S: GasWorld>(
    eng: &mut Engine<S>,
    at: LocalityId,
    update: MemberUpdate,
) {
    let n = eng.state.cluster_ref().len();
    eng.state.gas(at).member.apply(n, &update);
}

/// Handle a wire [`GasMsg::DirHandoff`]: install the departed shard's
/// records (newest generation wins, so racing commits are safe in either
/// order).
pub(crate) fn on_dir_handoff<S: GasWorld>(
    eng: &mut Engine<S>,
    at: LocalityId,
    records: Vec<(u64, OwnerRec)>,
    from: LocalityId,
) {
    for (b, rec) in records {
        eng.state.gas(at).dir.install(b, rec);
    }
    let _ = from;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_view_resolves_to_encoded_home() {
        let v = MembershipView::default();
        assert!(!v.is_enabled());
        assert_eq!(v.resolve(0x1000, 2), 2);
        assert_eq!(v.state_of(7), MemberState::Active);
        assert!(v.render().is_none());
    }

    #[test]
    fn overrides_and_served_by_chase() {
        let mut v = MembershipView::default();
        v.ensure(4);
        // Block 8 re-homed to 3; 3 later left, served by 1.
        v.apply(
            4,
            &MemberUpdate {
                loc: 3,
                state: MemberState::Active,
                served_by: None,
                rehomed: vec![8],
            },
        );
        assert_eq!(v.resolve(8, 0), 3);
        v.apply(
            4,
            &MemberUpdate {
                loc: 3,
                state: MemberState::Left,
                served_by: Some(1),
                rehomed: vec![],
            },
        );
        assert_eq!(v.resolve(8, 0), 1);
        assert_eq!(v.resolve(99, 0), 0, "un-overridden block keeps its home");
        assert_eq!(v.state_of(3), MemberState::Left);
    }

    #[test]
    fn resolve_is_bounded_on_cycles() {
        let mut v = MembershipView::default();
        v.ensure(2);
        // A (never legal) served_by cycle must not hang resolution.
        v.served_by[0] = 1;
        v.served_by[1] = 0;
        let r = v.resolve(5, 0);
        assert!(r == 0 || r == 1);
    }

    #[test]
    fn next_active_skips_non_members() {
        let mut v = MembershipView::default();
        v.ensure(4);
        v.states[1] = MemberState::Crashed;
        v.states[2] = MemberState::Draining;
        assert_eq!(next_active(&v, 0, 4), Some(3));
        v.states[3] = MemberState::Left;
        assert_eq!(next_active(&v, 0, 4), None);
    }

    #[test]
    fn evac_ctx_is_generation_zero() {
        let id = evac_ctx(0xdead_beef_0000);
        assert_eq!(id.generation(), 0);
    }
}
