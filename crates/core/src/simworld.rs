//! A `Send` world for the full photon + GAS stack, runnable on both the
//! sequential [`Engine`] and the sharded
//! [`ShardedEngine`](netsim::ShardedEngine).
//!
//! The integration tests' traditional `World` keeps one shared event log,
//! which is fine sequentially but unusable across shard lanes. `SimWorld`
//! is its lane-safe twin: identical construction defaults, identical
//! protocol dispatch (so any workload replayed on it schedules the exact
//! same `(time, seq)` event sequence and reproduces the same golden trace
//! hashes), but every driver-visible observation — completion events,
//! audit expectations, mismatch counters — lives in a *per-locality*
//! record that only the owning lane touches.
//!
//! It also carries the self-pumping GUPS load generator used by the
//! parallel-scaling benchmark: each locality holds a private RNG and an
//! op budget, and every put completion immediately issues the next
//! random-block put from the completing locality. The pump keeps every
//! lane saturated without any drive-phase serialization, which is what
//! makes the sharded speedup measurable.

use crate::check::{check_blocks, check_history, Violation};
use crate::{GasConfig, GasLocal, GasMode, GasMsg, GasStats, GasWorld, Gva, PgasMap};
use netsim::rng::Xoshiro256;
use netsim::shard::ShardMap;
use netsim::{
    AmoOp, AmoResult, Cluster, Counters, Engine, Envelope, LocalityId, NackReason, NetConfig,
    OpError, OpId, OpKind, OutcomeCounters, Packet, Protocol, ServerPool, SharedState, SplitWorld,
    Time,
};
use photon::{PhotonConfig, PhotonEndpoint, PhotonMsg, PhotonWorld};
use std::collections::HashMap;

/// Wire message: photon control or GAS protocol traffic.
#[derive(Debug)]
pub enum SimMsg {
    /// Photon middleware traffic.
    Photon(PhotonMsg),
    /// GAS protocol traffic.
    Gas(GasMsg),
}

/// A driver-visible completion event.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEv {
    /// `memput` completed (ctx bits).
    PutDone(u64),
    /// `memget` completed with its data.
    GetDone(u64, Vec<u8>),
    /// Migration committed: `(ctx bits, block key)`.
    MigDone(u64, u64),
    /// Runtime free committed: `(ctx bits, block key)`.
    FreeDone(u64, u64),
    /// Active operation completed: `(ctx bits, NIC-reported result)`.
    AmoDone(u64, AmoResult),
    /// Terminal failure: `(ctx bits, rendered error)`.
    OpFailed(u64, String),
}

/// Per-locality GUPS pump state: a private RNG and an op budget.
#[derive(Debug)]
pub struct GupsPump {
    /// Puts this locality may still issue.
    pub remaining: u64,
    /// Completions observed (pump-issued puts only).
    pub completed: u64,
    rng: Xoshiro256,
    next_op: u64,
}

/// Which AMO workload an [`AmoPump`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmoPumpKind {
    /// Contended fetch-and-add: every op is a `FetchAdd { operand: 1 }`
    /// on a random hot word.
    FetchAdd,
    /// CAS-increment loop: atomic read (`FetchAdd { operand: 0 }`), then
    /// compare-and-swap `old → old + 1`, retrying with the observed value
    /// until the swap lands.
    CasRetry,
}

/// Per-locality AMO load generator: a private RNG, an op budget, and —
/// for the CAS workload — the in-flight retry state.
#[derive(Debug)]
pub struct AmoPump {
    /// Logical ops this locality may still start.
    pub remaining: u64,
    /// Logical ops finished (for CAS, a landed swap).
    pub completed: u64,
    /// CAS attempts that lost the race and were re-issued.
    pub cas_retries: u64,
    kind: AmoPumpKind,
    /// CAS workload phase: `(target word, in-CAS-phase)`; `None` between
    /// logical ops.
    cas: Option<(Gva, bool)>,
    rng: Xoshiro256,
    next_op: u64,
}

/// The slice of driver state owned by one locality — and therefore by one
/// shard lane.
#[derive(Default)]
pub struct SimLoc {
    /// Completion events observed here (only when
    /// [`SimData::record_events`] is on).
    pub events: Vec<(Time, SimEv)>,
    /// Put completions delivered here.
    pub put_acks: u64,
    /// Get completions delivered here.
    pub get_acks: u64,
    /// Migration completions delivered here.
    pub migration_acks: u64,
    /// Active-operation completions delivered here.
    pub amo_acks: u64,
    /// Terminal op failures delivered here.
    pub op_failures: u64,
    /// Audited gets whose data was neither zeros nor the registered value.
    pub data_mismatches: u64,
    /// Audit registry: ctx bits → the slot's one legal non-zero value,
    /// consumed by the get completion.
    pub expect: HashMap<u64, u64>,
    /// The self-pumping GUPS load generator, when armed.
    pub pump: Option<GupsPump>,
    /// The self-pumping AMO load generator, when armed.
    pub amo_pump: Option<AmoPump>,
}

/// The backing storage of a [`SimWorld`]; lanes alias it via
/// [`SharedState`].
pub struct SimData {
    /// The simulated cluster.
    pub cluster: Cluster,
    /// Per-locality photon endpoints.
    pub eps: Vec<PhotonEndpoint>,
    /// Per-locality GAS state.
    pub gas: Vec<GasLocal>,
    /// Per-locality CPU worker pools.
    pub cpus: Vec<ServerPool>,
    /// The replicated PGAS placement registry (read-only at event time).
    pub pgas: PgasMap,
    /// The active GAS mode.
    pub mode: GasMode,
    /// Whether completions append to [`SimLoc::events`] (off for long
    /// benchmark runs to avoid unbounded logs).
    pub record_events: bool,
    /// Blocks the GUPS pump targets (read-only at event time).
    pub pump_blocks: Vec<Gva>,
    /// Per-locality driver records.
    pub locs: Vec<SimLoc>,
}

/// The world handle: owner on the control engine, alias on each lane.
pub struct SimWorld {
    /// Shared backing storage.
    pub data: SharedState<SimData>,
}

impl SimWorld {
    /// Build a world with the integration suite's construction defaults:
    /// 256 MiB arenas, default photon/GAS configs, two CPU workers per
    /// locality.
    pub fn new(n: usize, mode: GasMode, net: NetConfig) -> SimWorld {
        SimWorld::with_photon(n, mode, net, PhotonConfig::default())
    }

    /// [`SimWorld::new`] with an explicit photon configuration — how the
    /// ring benchmarks and shadow tests turn the descriptor-ring issue
    /// path on without disturbing the default-config schedules.
    pub fn with_photon(n: usize, mode: GasMode, net: NetConfig, pcfg: PhotonConfig) -> SimWorld {
        SimWorld {
            data: SharedState::new(SimData {
                cluster: Cluster::new(n, net, 1 << 28),
                eps: (0..n).map(|_| PhotonEndpoint::new(pcfg)).collect(),
                gas: (0..n)
                    .map(|_| GasLocal::new(GasConfig::default()))
                    .collect(),
                cpus: (0..n).map(|_| ServerPool::new(2)).collect(),
                pgas: PgasMap::new(),
                mode,
                record_events: true,
                pump_blocks: Vec::new(),
                locs: (0..n).map(|_| SimLoc::default()).collect(),
            }),
        }
    }

    /// Install the block set the GUPS pump draws targets from.
    pub fn set_pump_blocks(&mut self, blocks: Vec<Gva>) {
        self.data.pump_blocks = blocks;
    }

    /// Arm the self-pumping GUPS generator on `loc` with `budget` puts.
    pub fn arm_gups(&mut self, loc: LocalityId, budget: u64, seed: u64) {
        self.data.locs[loc as usize].pump = Some(GupsPump {
            remaining: budget,
            completed: 0,
            rng: Xoshiro256::seed_from_u64(seed ^ (u64::from(loc) << 32)),
            next_op: 0,
        });
    }

    /// Kick the pump on `loc`: issue its first put (subsequent puts chain
    /// off completions). Call through `drive_at(loc, ..)` when sharded.
    pub fn pump_prime(eng: &mut Engine<SimWorld>, loc: LocalityId) {
        pump_next(eng, loc);
    }

    /// Arm the self-pumping AMO generator on `loc` with `budget` logical
    /// ops of the given kind.
    pub fn arm_amo(&mut self, loc: LocalityId, kind: AmoPumpKind, budget: u64, seed: u64) {
        self.data.locs[loc as usize].amo_pump = Some(AmoPump {
            remaining: budget,
            completed: 0,
            cas_retries: 0,
            kind,
            cas: None,
            rng: Xoshiro256::seed_from_u64(seed ^ 0x05ee_da40 ^ (u64::from(loc) << 32)),
            next_op: 0,
        });
    }

    /// Kick the AMO pump on `loc`: start its first logical op.
    pub fn amo_pump_prime(eng: &mut Engine<SimWorld>, loc: LocalityId) {
        amo_pump_start(eng, loc);
    }

    /// Register the one legal non-zero value for an audited get.
    pub fn expect_value(&mut self, loc: LocalityId, ctx: OpId, value: u64) {
        self.data.locs[loc as usize].expect.insert(ctx.raw(), value);
    }

    /// Drain every per-locality event log into one time-ordered list.
    pub fn drain_events(&mut self) -> Vec<(Time, LocalityId, SimEv)> {
        let mut out = Vec::new();
        for (l, sl) in self.data.locs.iter_mut().enumerate() {
            out.extend(sl.events.drain(..).map(|(t, ev)| (t, l as LocalityId, ev)));
        }
        out.sort_by_key(|&(t, l, _)| (t, l));
        out
    }

    /// Sum of a per-locality counter over all localities.
    fn total(&self, f: impl Fn(&SimLoc) -> u64) -> u64 {
        self.data.locs.iter().map(f).sum()
    }

    /// Put completions across the cluster.
    pub fn put_acks(&self) -> u64 {
        self.total(|l| l.put_acks)
    }

    /// Get completions across the cluster.
    pub fn get_acks(&self) -> u64 {
        self.total(|l| l.get_acks)
    }

    /// Migration completions across the cluster.
    pub fn migration_acks(&self) -> u64 {
        self.total(|l| l.migration_acks)
    }

    /// Terminal op failures across the cluster.
    pub fn op_failures(&self) -> u64 {
        self.total(|l| l.op_failures)
    }

    /// Audited-get mismatches across the cluster.
    pub fn data_mismatches(&self) -> u64 {
        self.total(|l| l.data_mismatches)
    }

    /// GUPS pump completions across the cluster.
    pub fn pump_completed(&self) -> u64 {
        self.total(|l| l.pump.as_ref().map_or(0, |p| p.completed))
    }

    /// Active-operation completions across the cluster.
    pub fn amo_acks(&self) -> u64 {
        self.total(|l| l.amo_acks)
    }

    /// AMO pump logical ops finished across the cluster.
    pub fn amo_pump_completed(&self) -> u64 {
        self.total(|l| l.amo_pump.as_ref().map_or(0, |p| p.completed))
    }

    /// CAS attempts that lost the race, across the cluster.
    pub fn amo_cas_retries(&self) -> u64 {
        self.total(|l| l.amo_pump.as_ref().map_or(0, |p| p.cas_retries))
    }

    /// Aggregate GAS stats across localities.
    pub fn total_gas_stats(&self) -> GasStats {
        let mut total = GasStats::default();
        for g in &self.data.gas {
            let s = g.stats;
            total.puts += s.puts;
            total.gets += s.gets;
            total.amos += s.amos;
            total.local_ops += s.local_ops;
            total.remote_ops += s.remote_ops;
            total.retries += s.retries;
            total.dir_queries += s.dir_queries;
            total.sw_puts_handled += s.sw_puts_handled;
            total.sw_gets_handled += s.sw_gets_handled;
            total.sw_amos_handled += s.sw_amos_handled;
            total.amo_replays += s.amo_replays;
            total.sw_fallbacks += s.sw_fallbacks;
            total.migrations_started += s.migrations_started;
            total.migrations_done += s.migrations_done;
            total.stale_completions += s.stale_completions;
            total.protocol_violations += s.protocol_violations;
            total.deadline_exceeded += s.deadline_exceeded;
            total.deadline_retries += s.deadline_retries;
            total.ops_failed += s.ops_failed;
            total.shm_ops += s.shm_ops;
            total.shm_bytes += s.shm_bytes;
            total.blocks_rehomed += s.blocks_rehomed;
            total.blocks_recovered += s.blocks_recovered;
            total.stale_xlate_dropped += s.stale_xlate_dropped;
        }
        total
    }

    /// Aggregate op-outcome counters across localities.
    pub fn total_outcomes(&self) -> OutcomeCounters {
        let mut total = OutcomeCounters::default();
        for g in &self.data.gas {
            total.merge(&g.outcomes);
        }
        total
    }

    /// Aggregate NIC/network counters across localities.
    pub fn total_counters(&self) -> Counters {
        self.data.cluster.total_counters()
    }

    /// Structural + serializability violations over `blocks` (delegates to
    /// [`crate::check`]).
    pub fn violations(&self, blocks: &[Gva]) -> Vec<Violation> {
        let mut v = check_blocks(self, blocks);
        v.extend(check_history(self));
        v
    }
}

impl Protocol for SimWorld {
    type Msg = SimMsg;

    fn cluster(&mut self) -> &mut Cluster {
        &mut self.data.cluster
    }

    fn cluster_ref(&self) -> &Cluster {
        &self.data.cluster
    }

    fn deliver(eng: &mut Engine<Self>, env: Envelope<SimMsg>) {
        match env.packet {
            Packet::User(SimMsg::Photon(p)) => photon::handle_msg(eng, env.src, env.dst, p),
            Packet::User(SimMsg::Gas(g)) => crate::ops::handle_msg(eng, env.src, env.dst, g),
            other => photon::handle_completion(eng, env.src, env.dst, other),
        }
    }
}

impl PhotonWorld for SimWorld {
    fn endpoint(&mut self, loc: LocalityId) -> &mut PhotonEndpoint {
        &mut self.data.eps[loc as usize]
    }
    fn wrap(msg: PhotonMsg) -> SimMsg {
        SimMsg::Photon(msg)
    }
    fn pwc_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId) {
        crate::ops::on_pwc_complete(eng, loc, ctx);
    }
    fn pwc_remote(_eng: &mut Engine<Self>, _loc: LocalityId, _tag: u64, _len: u32) {}
    fn pwc_failed(
        eng: &mut Engine<Self>,
        loc: LocalityId,
        ctx: OpId,
        kind: OpKind,
        reason: NackReason,
        block: u64,
    ) {
        crate::ops::on_pwc_failed(eng, loc, ctx, kind, reason, block);
    }
    fn recv_complete(
        _eng: &mut Engine<Self>,
        _loc: LocalityId,
        _src: LocalityId,
        _tag: u64,
        _data: Vec<u8>,
    ) {
    }
    fn send_complete(_eng: &mut Engine<Self>, _loc: LocalityId, _send_id: u64) {}
    fn xlate_miss_local(eng: &mut Engine<Self>, loc: LocalityId, block: u64) {
        crate::ops::on_xlate_miss(eng, loc, block);
    }
    fn pwc_amo_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, result: AmoResult) {
        crate::ops::on_pwc_amo_complete(eng, loc, ctx, result);
    }
}

impl GasWorld for SimWorld {
    fn gas(&mut self, loc: LocalityId) -> &mut GasLocal {
        &mut self.data.gas[loc as usize]
    }
    fn gas_ref(&self, loc: LocalityId) -> &GasLocal {
        &self.data.gas[loc as usize]
    }
    fn gas_mode(&self) -> GasMode {
        self.data.mode
    }
    fn pgas(&mut self) -> &mut PgasMap {
        &mut self.data.pgas
    }
    fn cpu(&mut self, loc: LocalityId) -> &mut ServerPool {
        &mut self.data.cpus[loc as usize]
    }
    fn wrap_gas(msg: GasMsg) -> SimMsg {
        SimMsg::Gas(msg)
    }

    fn gas_put_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId) {
        let now = eng.now();
        let d = &mut *eng.state.data;
        let record = d.record_events;
        let sl = &mut d.locs[loc as usize];
        sl.put_acks += 1;
        if record {
            sl.events.push((now, SimEv::PutDone(ctx.raw())));
        }
        if sl.pump.is_some() {
            if let Some(p) = sl.pump.as_mut() {
                p.completed += 1;
            }
            pump_next(eng, loc);
        }
    }

    fn gas_get_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, data: Vec<u8>) {
        let now = eng.now();
        let d = &mut *eng.state.data;
        let record = d.record_events;
        let sl = &mut d.locs[loc as usize];
        sl.get_acks += 1;
        if let Some(expect) = sl.expect.remove(&ctx.raw()) {
            let got = u64::from_le_bytes(data[..8].try_into().expect("audited get ≥ 8 bytes"));
            if got != 0 && got != expect {
                sl.data_mismatches += 1;
            }
        }
        if record {
            sl.events.push((now, SimEv::GetDone(ctx.raw(), data)));
        }
    }

    fn gas_migrate_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, block: u64) {
        let now = eng.now();
        let d = &mut *eng.state.data;
        let record = d.record_events;
        let sl = &mut d.locs[loc as usize];
        sl.migration_acks += 1;
        if record {
            sl.events.push((now, SimEv::MigDone(ctx.raw(), block)));
        }
    }

    fn gas_free_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, block: u64) {
        let now = eng.now();
        let d = &mut *eng.state.data;
        let record = d.record_events;
        let sl = &mut d.locs[loc as usize];
        if record {
            sl.events.push((now, SimEv::FreeDone(ctx.raw(), block)));
        }
    }

    fn gas_amo_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, result: AmoResult) {
        let now = eng.now();
        let d = &mut *eng.state.data;
        let record = d.record_events;
        let sl = &mut d.locs[loc as usize];
        sl.amo_acks += 1;
        if record {
            sl.events
                .push((now, SimEv::AmoDone(ctx.raw(), result.clone())));
        }
        if sl.amo_pump.is_some() {
            amo_pump_advance(eng, loc, result);
        }
    }

    fn gas_op_failed(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, _gva: Gva, err: OpError) {
        let now = eng.now();
        let d = &mut *eng.state.data;
        let record = d.record_events;
        let sl = &mut d.locs[loc as usize];
        sl.op_failures += 1;
        sl.expect.remove(&ctx.raw());
        if record {
            sl.events
                .push((now, SimEv::OpFailed(ctx.raw(), err.to_string())));
        }
        let had_pump = sl.pump.is_some();
        // A terminally-failed AMO abandons its logical op; start the next.
        let had_amo = if let Some(p) = sl.amo_pump.as_mut() {
            p.cas = None;
            true
        } else {
            false
        };
        // A failed pump put still owes the chain its continuation.
        if had_pump {
            pump_next(eng, loc);
        }
        if had_amo {
            amo_pump_start(eng, loc);
        }
    }
}

/// Issue the next pump put from `loc`, if budget remains. Draws target
/// block, offset, and value from the locality's private RNG — all state
/// owned by `loc`'s lane, so the pump is lane-safe and its draw order is
/// fixed by the (deterministic) per-locality completion order.
fn pump_next(eng: &mut Engine<SimWorld>, loc: LocalityId) {
    let d = &mut *eng.state.data;
    let nblocks = d.pump_blocks.len() as u64;
    let Some(p) = d.locs[loc as usize].pump.as_mut() else {
        return;
    };
    if p.remaining == 0 || nblocks == 0 {
        return;
    }
    p.remaining -= 1;
    let r = p.rng.next_u64();
    let op = p.next_op;
    p.next_op += 1;
    let base = d.pump_blocks[(r % nblocks) as usize];
    let slots = base.block_size() / 8;
    let gva = base.with_offset(((r >> 32) % slots) * 8);
    // Correlation token namespaced by locality so ctxs never collide.
    let ctx = OpId::from_raw((u64::from(loc) << 40) | op);
    crate::ops::memput(eng, loc, gva, r.to_le_bytes().to_vec(), ctx);
}

/// Contended-word count per pump block: AMO traffic stays in the first
/// eight words (offsets `0..64`), the convention that keeps AMO words
/// disjoint from put/get byte slots.
const AMO_PUMP_WORDS: u64 = 8;

/// Start the AMO pump's next logical op from `loc`, if budget remains.
/// Fetch-add ops issue directly; CAS ops open with an atomic read
/// (`FetchAdd { operand: 0 }`) to learn the word's current value.
fn amo_pump_start(eng: &mut Engine<SimWorld>, loc: LocalityId) {
    let d = &mut *eng.state.data;
    let nblocks = d.pump_blocks.len() as u64;
    let Some(p) = d.locs[loc as usize].amo_pump.as_mut() else {
        return;
    };
    if p.remaining == 0 || nblocks == 0 {
        return;
    }
    p.remaining -= 1;
    let r = p.rng.next_u64();
    let kind = p.kind;
    let ctx = amo_pump_ctx(loc, p);
    let base = d.pump_blocks[(r % nblocks) as usize];
    let words = (base.block_size() / 8).min(AMO_PUMP_WORDS);
    let gva = base.with_offset(((r >> 32) % words) * 8);
    let (amo, cas) = match kind {
        AmoPumpKind::FetchAdd => (AmoOp::FetchAdd { operand: 1 }, None),
        AmoPumpKind::CasRetry => (AmoOp::FetchAdd { operand: 0 }, Some((gva, false))),
    };
    if let Some(p) = d.locs[loc as usize].amo_pump.as_mut() {
        p.cas = cas;
    }
    crate::ops::memamo(eng, loc, gva, amo, ctx);
}

/// Feed an AMO completion back into the pump: count finished fetch-adds,
/// walk the CAS read → swap → retry state machine, and keep the chain
/// saturated.
fn amo_pump_advance(eng: &mut Engine<SimWorld>, loc: LocalityId, result: AmoResult) {
    let d = &mut *eng.state.data;
    let Some(p) = d.locs[loc as usize].amo_pump.as_mut() else {
        return;
    };
    match (p.kind, p.cas) {
        (AmoPumpKind::FetchAdd, _) => {
            p.completed += 1;
            amo_pump_start(eng, loc);
        }
        // The opening read came back: try to swap `old → old + 1`.
        (AmoPumpKind::CasRetry, Some((gva, false))) => {
            p.cas = Some((gva, true));
            let amo = AmoOp::CompareSwap {
                expected: result.old,
                desired: result.old.wrapping_add(1),
            };
            let ctx = amo_pump_ctx(loc, p);
            crate::ops::memamo(eng, loc, gva, amo, ctx);
        }
        (AmoPumpKind::CasRetry, Some((gva, true))) => {
            if result.applied {
                p.completed += 1;
                p.cas = None;
                amo_pump_start(eng, loc);
            } else {
                // Lost the race; the NACK carries the fresh value, so retry
                // against it directly.
                p.cas_retries += 1;
                let amo = AmoOp::CompareSwap {
                    expected: result.old,
                    desired: result.old.wrapping_add(1),
                };
                let ctx = amo_pump_ctx(loc, p);
                crate::ops::memamo(eng, loc, gva, amo, ctx);
            }
        }
        // A completion with no CAS in flight: a stale chain link; restart.
        (AmoPumpKind::CasRetry, None) => amo_pump_start(eng, loc),
    }
}

/// Correlation token for pump-issued AMOs: namespaced by locality, with
/// bit 39 set so GUPS-pump ctxs can never collide.
fn amo_pump_ctx(loc: LocalityId, p: &mut AmoPump) -> OpId {
    let op = p.next_op;
    p.next_op += 1;
    OpId::from_raw((u64::from(loc) << 40) | (1 << 39) | op)
}

// SAFETY: the protocol stack above netsim partitions its mutable state by
// locality — `eps[loc]`, `gas[loc]`, `cpus[loc]`, `locs[loc]`, and the
// locality's NIC/memory/counters inside `cluster` — and an event delivered
// at `loc` only touches `loc`'s slice, which belongs to the executing
// lane. The shared structures (`pgas`, `pump_blocks`, `mode`,
// `record_events`, the cluster-wide config) are read-only at event time:
// `pgas` is only written on the allocation (drive-phase) and runtime-free
// paths, and sharded workloads must not issue runtime frees. Shared wire
// state is confined to netsim's own `defer_wire` tails. Event closures
// capture only owned buffers and `Copy` data.
unsafe impl SplitWorld for SimWorld {
    fn lane_handle(&mut self, _lane: u32, _map: ShardMap) -> SimWorld {
        SimWorld {
            // SAFETY: `ShardedEngine` drops lane handles before the owner.
            data: unsafe { self.data.alias() },
        }
    }
}
