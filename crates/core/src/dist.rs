//! Static block distributions.
//!
//! A distribution maps a block index of a global allocation to the block's
//! *home* locality — the directory anchor and initial owner. PGAS mode uses
//! the distribution as the permanent placement; AGAS modes treat it only as
//! the starting point.

use netsim::LocalityId;
use std::rc::Rc;

/// How a global allocation's blocks are spread over localities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Block `i` lives at locality `i mod n` (HPX's `hpx_gas_alloc_cyclic`).
    Cyclic,
    /// Contiguous runs of `ceil(total/n)` blocks per locality.
    Blocked,
    /// Every block at one locality (`hpx_gas_alloc_local` at scale).
    Single(LocalityId),
    /// Caller-chosen placement: block `i` at `homes[i % homes.len()]`
    /// (HPX's user-defined distributions; cheap to clone via `Rc`).
    Explicit(Rc<Vec<LocalityId>>),
}

impl Distribution {
    /// Home of block `index` out of `total` blocks over `n` localities.
    pub fn home(&self, index: u64, total: u64, n: u32) -> LocalityId {
        debug_assert!(index < total);
        debug_assert!(n > 0);
        match self {
            Distribution::Cyclic => (index % n as u64) as LocalityId,
            Distribution::Blocked => {
                let per = total.div_ceil(n as u64);
                ((index / per) as u32).min(n - 1)
            }
            Distribution::Single(loc) => {
                debug_assert!(*loc < n);
                *loc
            }
            Distribution::Explicit(homes) => {
                assert!(!homes.is_empty(), "explicit distribution needs homes");
                let h = homes[(index % homes.len() as u64) as usize];
                debug_assert!(h < n);
                h
            }
        }
    }

    /// Number of blocks homed at `loc` for an allocation of `total` blocks.
    pub fn blocks_at(&self, loc: LocalityId, total: u64, n: u32) -> u64 {
        match self {
            Distribution::Cyclic => {
                let base = total / n as u64;
                let extra = total % n as u64;
                base + u64::from((loc as u64) < extra)
            }
            Distribution::Blocked => {
                let per = total.div_ceil(n as u64);
                let start = per * loc as u64;
                total.saturating_sub(start).min(per)
            }
            Distribution::Single(l) => {
                if *l == loc {
                    total
                } else {
                    0
                }
            }
            Distribution::Explicit(_) => (0..total)
                .filter(|&i| self.home(i, total, n) == loc)
                .count() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_wraps() {
        let d = Distribution::Cyclic;
        let homes: Vec<u32> = (0..8).map(|i| d.home(i, 8, 3)).collect();
        assert_eq!(homes, vec![0, 1, 2, 0, 1, 2, 0, 1]);
    }

    #[test]
    fn blocked_is_contiguous() {
        let d = Distribution::Blocked;
        let homes: Vec<u32> = (0..8).map(|i| d.home(i, 8, 3)).collect();
        assert_eq!(homes, vec![0, 0, 0, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn blocked_remainder_clamped() {
        let d = Distribution::Blocked;
        // 4 blocks over 3 localities: per = 2 => homes 0,0,1,1.
        let homes: Vec<u32> = (0..4).map(|i| d.home(i, 4, 3)).collect();
        assert_eq!(homes, vec![0, 0, 1, 1]);
    }

    #[test]
    fn single_pins_everything() {
        let d = Distribution::Single(2);
        assert!((0..10).all(|i| d.home(i, 10, 4) == 2));
    }

    #[test]
    fn explicit_placement_repeats_pattern() {
        let d = Distribution::Explicit(Rc::new(vec![2, 0, 2]));
        let homes: Vec<u32> = (0..6).map(|i| d.home(i, 6, 3)).collect();
        assert_eq!(homes, vec![2, 0, 2, 2, 0, 2]);
        assert_eq!(d.blocks_at(2, 6, 3), 4);
        assert_eq!(d.blocks_at(1, 6, 3), 0);
    }

    #[test]
    fn blocks_at_agrees_with_home() {
        for dist in [
            Distribution::Cyclic,
            Distribution::Blocked,
            Distribution::Single(1),
            Distribution::Explicit(Rc::new(vec![3, 1])),
        ] {
            for total in [1u64, 7, 8, 9, 100] {
                let n = 4;
                for loc in 0..n {
                    let counted = (0..total)
                        .filter(|&i| dist.home(i, total, n) == loc)
                        .count() as u64;
                    assert_eq!(
                        counted,
                        dist.blocks_at(loc, total, n),
                        "{dist:?} total={total} loc={loc}"
                    );
                }
            }
        }
    }
}
