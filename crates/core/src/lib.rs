//! # agas — the network-managed virtual global address space
//!
//! This crate is the paper's primary contribution, reconstructed: a virtual
//! global address space for message-driven runtimes in which the
//! virtual→physical translation of global addresses is **managed by the
//! network layer** (the simulated NIC's translation table) rather than by
//! runtime software, while still supporting **block migration**.
//!
//! Three interchangeable implementations sit behind one API
//! ([`ops::memput`] / [`ops::memget`] / [`migrate::migrate_block`]):
//!
//! | mode | translation | remote access | mobility |
//! |---|---|---|---|
//! | [`GasMode::Pgas`] | address arithmetic | RDMA on physical addresses | none |
//! | [`GasMode::AgasSoftware`] | target-CPU BTT lookup | two-sided parcel + reply | yes |
//! | [`GasMode::AgasNetwork`] | **target-NIC table** | RDMA on *virtual* addresses | yes |
//!
//! Supporting machinery: [`gva`] address encoding, [`btt`] block translation
//! tables, [`directory`] home-based ownership, [`cache`] source-side owner
//! hints, [`alloc`] collective allocation, [`migrate`] the migration
//! protocol with NIC forwarding/NACK recovery.

pub mod alloc;
pub mod btt;
pub mod cache;
pub mod check;
pub mod config;
pub mod directory;
pub mod dist;
pub mod gva;
pub mod membership;
pub mod migrate;
pub mod ops;
pub mod simworld;

pub use alloc::{alloc_array, free_array, GlobalArray, PgasMap};
pub use btt::{BlockState, Btt, BttEntry};
pub use cache::{OwnerCache, OwnerHint};
pub use check::{
    assert_consistent, check_blocks, check_history, check_history_events,
    check_word_history_events, value_hash, HistEvent, HistKind, Violation, WordEvent, WordOp,
};
pub use config::{GasConfig, GasMode, RecoveryPolicy};
pub use directory::{Directory, OwnerRec};
pub use dist::Distribution;
pub use gva::Gva;
pub use membership::{MemberState, MemberUpdate, MembershipView};
pub use simworld::{AmoPumpKind, SimData, SimEv, SimLoc, SimMsg, SimWorld};

use netsim::{
    AmoKey, AmoOp, AmoResult, Engine, LocalityId, OpError, OpId, OpTable, OutcomeCounters,
    PhysAddr, ServerPool, Time,
};
use photon::PhotonWorld;
use std::collections::HashMap;
use std::fmt;

/// GAS wire-protocol messages, embedded into the world's message enum via
/// [`GasWorld::wrap_gas`].
#[derive(Debug)]
pub enum GasMsg {
    /// Software-AGAS remote write: handled by the owner's CPU.
    SwPut {
        /// Target block key.
        block: u64,
        /// Byte offset within the block.
        offset: u64,
        /// Payload.
        data: Vec<u8>,
        /// Initiator's operation handle.
        ctx: OpId,
        /// Where the ack goes.
        reply_to: LocalityId,
    },
    /// Ack of a software write.
    SwPutAck {
        /// Initiator's operation handle.
        ctx: OpId,
    },
    /// Software-AGAS remote read.
    SwGet {
        /// Target block key.
        block: u64,
        /// Byte offset within the block.
        offset: u64,
        /// Bytes requested.
        len: u32,
        /// Initiator's operation handle.
        ctx: OpId,
        /// Where the reply goes.
        reply_to: LocalityId,
    },
    /// Data reply of a software read.
    SwGetReply {
        /// Initiator's operation handle.
        ctx: OpId,
        /// The data.
        data: Vec<u8>,
    },
    /// Software-AGAS (or network-mode fallback) active operation: the
    /// owner's CPU translates, executes the AMO, and replies with the
    /// result — the emulated baseline the NIC-executed path is measured
    /// against.
    SwAmo {
        /// Target block key.
        block: u64,
        /// Byte offset of the target word (word ops; scatter/gather carry
        /// their own offsets).
        offset: u64,
        /// The operation.
        amo: AmoOp,
        /// Retry-stable dedup identity (shared with the NIC responder
        /// cache, so a retry that switches paths still deduplicates).
        key: AmoKey,
        /// Initiator's operation handle.
        ctx: OpId,
        /// Where the reply goes.
        reply_to: LocalityId,
    },
    /// Result reply of a software active operation.
    SwAmoReply {
        /// Initiator's operation handle.
        ctx: OpId,
        /// What the op observed/returned.
        result: AmoResult,
    },
    /// The believed owner no longer holds the block: initiator must
    /// re-resolve through the home directory.
    SwRetry {
        /// Initiator's operation handle.
        ctx: OpId,
        /// The block that bounced.
        block: u64,
    },
    /// Ask a block's home for the authoritative owner.
    DirQuery {
        /// Block key.
        block: u64,
        /// Initiator's operation handle.
        ctx: OpId,
        /// Where the reply goes.
        reply_to: LocalityId,
    },
    /// Authoritative ownership answer.
    DirReply {
        /// Block key.
        block: u64,
        /// Current owner.
        owner: LocalityId,
        /// Current generation.
        generation: u32,
        /// Echoed operation handle.
        ctx: OpId,
    },
    /// Commit a migration at the home directory.
    DirUpdate {
        /// Block key.
        block: u64,
        /// New owner.
        owner: LocalityId,
        /// New generation.
        generation: u32,
        /// Who to ack (the new owner).
        reply_to: LocalityId,
    },
    /// Home acknowledged the directory update.
    DirUpdateAck {
        /// Block key.
        block: u64,
    },
    /// Request to migrate `block` to `dst`; routed via the home to the
    /// current owner.
    MigRequest {
        /// Block key.
        block: u64,
        /// Destination locality.
        dst: LocalityId,
        /// Requester's op handle for the completion callback.
        ctx: OpId,
        /// The requester.
        reply_to: LocalityId,
        /// Routing hops consumed (guards against pathological chases).
        hops: u8,
    },
    /// The block's bytes, moving from old owner to new owner.
    MigData {
        /// Block key.
        block: u64,
        /// Size class.
        class: u8,
        /// New generation (old + 1).
        generation: u32,
        /// Block contents.
        data: Vec<u8>,
        /// Remembered AMO completions for the block (responder-cache
        /// entries travel with the block so retries that chase the
        /// forward still deduplicate at the new owner).
        amo_log: Vec<(AmoKey, AmoResult)>,
        /// The old owner.
        src: LocalityId,
        /// Requester op handle, forwarded for the completion callback.
        ctx: OpId,
        /// The original requester.
        reply_to: LocalityId,
    },
    /// New owner → old owner: installation complete, drain queued accesses.
    MigAck {
        /// Block key.
        block: u64,
    },
    /// Migration fully committed (home updated); completion callback.
    MigDone {
        /// Requester op handle.
        ctx: OpId,
        /// The migrated block.
        block: u64,
    },
    /// Free a block at runtime; routed via the home to the current owner.
    FreeRequest {
        /// Block key.
        block: u64,
        /// Requester op handle.
        ctx: OpId,
        /// The requester.
        reply_to: LocalityId,
        /// Routing hops consumed.
        hops: u8,
    },
    /// Owner → home: retire the directory record for a freed block.
    DirUnregister {
        /// Block key.
        block: u64,
        /// Requester op handle, forwarded.
        ctx: OpId,
        /// Who receives the final FreeDone.
        reply_to: LocalityId,
    },
    /// A runtime free fully committed.
    FreeDone {
        /// Requester op handle.
        ctx: OpId,
        /// The freed block.
        block: u64,
    },
    /// Several control messages toward one peer that shared a doorbell on
    /// the sender's control ring ([`GasConfig::ctrl_ring`]): one wire
    /// message, unpacked and dispatched in post order at the receiver.
    CtrlBatch(Vec<GasMsg>),
    /// A membership transition broadcast over the wire (a drain's final
    /// `Left`, carrying the re-homed block set).
    Member {
        /// The transition.
        update: membership::MemberUpdate,
    },
    /// A departing locality hands its directory shard to the take-over
    /// locality (installed newest-generation-wins).
    DirHandoff {
        /// The shard's records, sorted by block key.
        records: Vec<(u64, OwnerRec)>,
        /// The departing locality.
        from: LocalityId,
    },
}

/// GAS-layer statistics (per locality).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GasStats {
    /// memput operations initiated.
    pub puts: u64,
    /// memget operations initiated.
    pub gets: u64,
    /// memamo operations initiated.
    pub amos: u64,
    /// Operations satisfied locally.
    pub local_ops: u64,
    /// Operations sent to a remote owner.
    pub remote_ops: u64,
    /// Bounce/retry cycles (stale owner hints, NIC misses).
    pub retries: u64,
    /// Directory queries issued.
    pub dir_queries: u64,
    /// Software put handlers executed here.
    pub sw_puts_handled: u64,
    /// Software get handlers executed here.
    pub sw_gets_handled: u64,
    /// Software AMO handlers executed here (the emulated path).
    pub sw_amos_handled: u64,
    /// AMO attempts answered from the responder cache by software (the
    /// software handler or a post-migration local commit) instead of
    /// re-executing — the CPU-side twin of the NIC's `amo_replays`.
    pub amo_replays: u64,
    /// Network-managed operations that degraded to the software path after
    /// repeated NIC-table misses.
    pub sw_fallbacks: u64,
    /// Migrations initiated from here (as the old owner).
    pub migrations_started: u64,
    /// Migration completions observed by this requester.
    pub migrations_done: u64,
    /// Completions/replies naming an unknown or stale op handle, dropped.
    pub stale_completions: u64,
    /// Protocol-state-machine violations observed and dropped (late acks,
    /// duplicate installs, frees of non-resident blocks).
    pub protocol_violations: u64,
    /// Ops reclaimed by the deadline sweep.
    pub deadline_exceeded: u64,
    /// Sweep-reclaimed ops re-issued through directory recovery instead of
    /// failed ([`GasConfig::retry_on_deadline`] — the lost-message recovery
    /// path under fault injection).
    pub deadline_retries: u64,
    /// Ops delivered to the initiator as failed (deadline or retry budget).
    pub ops_failed: u64,
    /// Remote operations that short-circuited the NIC over an intra-domain
    /// shared-memory mapping ([`netsim::ShmDomain`]): zero wire messages.
    pub shm_ops: u64,
    /// Payload bytes moved over the shared-memory short-circuit.
    pub shm_bytes: u64,
    /// Directory records this locality took over through a membership join
    /// slice (counted at the joiner).
    pub blocks_rehomed: u64,
    /// Lost blocks re-issued here after a crash (zero-filled,
    /// generation-bumped — see `membership`).
    pub blocks_recovered: u64,
    /// NIC forward entries purged because their next hop crashed.
    pub stale_xlate_dropped: u64,
}

/// Where an in-flight op last was in its lifecycle (diagnostics: stuck-op
/// reports, `repro ops`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpPhase {
    /// Submitted; routing decision not yet taken.
    Issued,
    /// One-sided RDMA in flight (PGAS or network-managed path).
    Rdma,
    /// Two-sided software request in flight.
    Sw,
    /// Intra-domain shared-memory access in flight (commit scheduled at
    /// the co-located target; no wire message exists to wait on).
    Shm,
    /// Bounced; waiting on the home directory's answer.
    DirRecovery,
    /// Directory answered; waiting out the exponential backoff.
    Backoff,
}

impl fmt::Display for OpPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpPhase::Issued => "issued",
            OpPhase::Rdma => "rdma-in-flight",
            OpPhase::Sw => "sw-in-flight",
            OpPhase::Shm => "shm-in-flight",
            OpPhase::DirRecovery => "dir-recovery",
            OpPhase::Backoff => "backoff",
        };
        f.write_str(s)
    }
}

/// A diagnostic snapshot of one in-flight op (for stuck-op reports and the
/// `repro ops` dump).
#[derive(Clone, Copy, Debug)]
pub struct OpSnapshot {
    /// The op handle.
    pub id: OpId,
    /// `"put"` or `"get"`.
    pub kind: &'static str,
    /// The global address the op targets.
    pub gva: Gva,
    /// Bounce/retry cycles consumed so far.
    pub attempts: u32,
    /// When the op was submitted.
    pub issued: Time,
    /// Absolute deadline, if one was configured.
    pub deadline: Option<Time>,
    /// Last lifecycle state.
    pub phase: OpPhase,
}

impl OpSnapshot {
    /// Render the snapshot with `now` for the age computation.
    pub fn render(&self, now: Time) -> String {
        format!(
            "{} {} gva={} age={} attempts={} state={}",
            self.kind,
            self.id,
            self.gva,
            now - self.issued,
            self.attempts,
            self.phase
        )
    }
}

pub(crate) enum OpPayload {
    Put {
        data: Vec<u8>,
    },
    Get {
        len: u32,
        scratch: Option<(PhysAddr, u8)>,
    },
    Amo {
        op: AmoOp,
    },
}

pub(crate) struct PendingOp {
    pub payload: OpPayload,
    pub gva: Gva,
    pub ctx: OpId,
    pub attempts: u32,
    /// When the operation was submitted (for the latency histograms and
    /// the stuck-op age report).
    pub issued: Time,
    /// Absolute instant after which the deadline sweep reclaims the op
    /// (`None` when [`GasConfig::op_deadline`] is off).
    pub deadline: Option<Time>,
    /// Last lifecycle state, for diagnostics.
    pub phase: OpPhase,
    /// Set after repeated NIC-table misses: degrade this operation to the
    /// software (two-sided) path, as real network-managed tables do under
    /// capacity thrash.
    pub force_sw: bool,
    /// The endpoint-table handle of the op's current photon attempt, so a
    /// bounce can retire it and a completion of a superseded attempt is
    /// recognized as stale rather than double-completing.
    pub attempt: Option<OpId>,
    /// Index of this op's [`HistEvent`] in the issuing locality's history
    /// log (only when [`GasConfig::record_history`] is on).
    pub hist: Option<usize>,
}

pub(crate) struct MovingState {
    pub dst: LocalityId,
    pub queued: Vec<GasMsg>,
}

pub(crate) struct PendingInstall {
    pub ctx: OpId,
    pub reply_to: LocalityId,
    pub old_owner: LocalityId,
}

/// Per-locality GAS state.
pub struct GasLocal {
    /// Cost parameters.
    pub cfg: GasConfig,
    /// The block translation table (blocks owned here).
    pub btt: Btt,
    /// Source-side owner cache.
    pub cache: OwnerCache,
    /// Directory shard (authoritative for blocks homed here).
    pub dir: Directory,
    /// Per-block software-access heat (the software analogue of the NIC's
    /// hit telemetry; drained by load-balancing policies).
    pub heat: HashMap<u64, u64>,
    /// Completion-latency histogram of memputs issued here (ns samples).
    pub put_latency: netsim::LogHistogram,
    /// Completion-latency histogram of memgets issued here (ns samples).
    pub get_latency: netsim::LogHistogram,
    /// Completion-latency histogram of memamos issued here (ns samples).
    pub amo_latency: netsim::LogHistogram,
    /// Statistics.
    pub stats: GasStats,
    /// Terminal-event rollup for the ops issued here.
    pub outcomes: OutcomeCounters,
    /// Serializability-checker log of every put/get/migrate observed here
    /// (empty unless [`GasConfig::record_history`] is on).
    pub history: Vec<HistEvent>,
    /// Word-level linearizability log of every AMO issued here (empty
    /// unless [`GasConfig::record_history`] is on). AMO-touched words are
    /// checked by [`check::check_word_history_events`]; workloads keep
    /// them disjoint from put/get slots.
    pub word_history: Vec<WordEvent>,
    /// This locality's view of the elastic membership plane (inert — zero
    /// overhead, zero schedule change — until a membership event fires).
    pub member: MembershipView,
    /// Per-peer control-message rings ([`GasConfig::ctrl_ring`]):
    /// migration/free protocol traffic batches here and shares doorbells.
    pub(crate) ctrl_rings: Option<netsim::RingSet<GasMsg>>,
    pub(crate) pending: OpTable<PendingOp>,
    pub(crate) next_seq: HashMap<u8, u64>,
    pub(crate) moving: HashMap<u64, MovingState>,
    pub(crate) pending_installs: HashMap<u64, PendingInstall>,
    pub(crate) deferred_migs: HashMap<u64, Vec<(LocalityId, OpId, LocalityId)>>,
    pub(crate) deferred_frees: HashMap<u64, Vec<(OpId, LocalityId)>>,
    /// Is the deadline sweep scheduled for this locality?
    pub(crate) sweep_armed: bool,
}

impl GasLocal {
    /// Fresh per-locality state.
    pub fn new(cfg: GasConfig) -> GasLocal {
        GasLocal {
            cache: OwnerCache::new(cfg.cache_capacity),
            cfg,
            btt: Btt::new(),
            dir: Directory::new(),
            heat: HashMap::new(),
            put_latency: netsim::LogHistogram::new(),
            get_latency: netsim::LogHistogram::new(),
            amo_latency: netsim::LogHistogram::new(),
            stats: GasStats::default(),
            outcomes: OutcomeCounters::default(),
            history: Vec::new(),
            word_history: Vec::new(),
            member: MembershipView::default(),
            ctrl_rings: cfg.ctrl_ring.map(netsim::RingSet::new),
            pending: OpTable::new(),
            next_seq: HashMap::new(),
            moving: HashMap::new(),
            pending_installs: HashMap::new(),
            deferred_migs: HashMap::new(),
            deferred_frees: HashMap::new(),
            sweep_armed: false,
        }
    }

    pub(crate) fn alloc_seq(&mut self, class: u8) -> u64 {
        let s = self.next_seq.entry(class).or_insert(0);
        let out = *s;
        *s += 1;
        out
    }

    /// Outstanding initiator-side operations.
    pub fn outstanding_ops(&self) -> usize {
        self.pending.len()
    }

    /// Whether the deadline sweep currently has a tick scheduled. Always
    /// `false` when [`GasConfig::op_deadline`] is `None`.
    pub fn sweep_armed(&self) -> bool {
        self.sweep_armed
    }

    /// Buffered control descriptors across this locality's migration
    /// control rings (0 when [`GasConfig::ctrl_ring`] is off).
    pub fn ctrl_ring_occupancy(&self) -> usize {
        self.ctrl_rings
            .as_ref()
            .map_or(0, netsim::RingSet::occupancy)
    }

    /// Stuck-descriptor snapshots of the control rings, for quiescence
    /// reports.
    pub fn ctrl_ring_snapshots(&self, now: Time) -> Vec<netsim::DescSnapshot> {
        self.ctrl_rings
            .as_ref()
            .map_or_else(Vec::new, |r| r.snapshots(now))
    }

    /// Per-peer effective doorbell batch of the control rings' AIMD
    /// controllers (empty when adaptive batching is off).
    pub fn ctrl_ring_eff_batches(&self) -> Vec<(LocalityId, usize)> {
        self.ctrl_rings
            .as_ref()
            .map_or_else(Vec::new, netsim::RingSet::eff_batches)
    }

    /// Diagnostic snapshots of every in-flight op issued here, in slot
    /// order (deterministic).
    pub fn op_snapshots(&self) -> Vec<OpSnapshot> {
        self.pending
            .iter()
            .map(|(id, p)| OpSnapshot {
                id,
                kind: match p.payload {
                    OpPayload::Put { .. } => "put",
                    OpPayload::Get { .. } => "get",
                    OpPayload::Amo { .. } => "amo",
                },
                gva: p.gva,
                attempts: p.attempts,
                issued: p.issued,
                deadline: p.deadline,
                phase: p.phase,
            })
            .collect()
    }
}

/// The contract between the GAS and the world embedding it.
///
/// The world routes `Packet::User` payloads that decode to [`GasMsg`] into
/// [`ops::handle_msg`], and forwards its [`PhotonWorld`] PWC callbacks to
/// [`ops::on_pwc_complete`] / [`ops::on_pwc_failed`] (the GAS is the only
/// issuer of PWC operations).
pub trait GasWorld: PhotonWorld {
    /// Per-locality GAS state.
    fn gas(&mut self, loc: LocalityId) -> &mut GasLocal;
    /// Shared access to per-locality GAS state (diagnostics/checkers).
    fn gas_ref(&self, loc: LocalityId) -> &GasLocal;
    /// The active GAS mode (uniform across the cluster).
    fn gas_mode(&self) -> GasMode;
    /// The replicated PGAS physical-placement registry.
    fn pgas(&mut self) -> &mut PgasMap;
    /// The locality's CPU worker pool (shared with the runtime scheduler,
    /// so GAS software handlers and application actions contend for the
    /// same cores — the effect the network-managed design eliminates).
    fn cpu(&mut self, loc: LocalityId) -> &mut ServerPool;
    /// Embed a GAS protocol message into the world's wire enum.
    fn wrap_gas(msg: GasMsg) -> Self::Msg;

    /// A memput completed.
    fn gas_put_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId);
    /// A memget completed with its data.
    fn gas_get_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, data: Vec<u8>);
    /// A memamo completed with its result.
    fn gas_amo_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, result: AmoResult);
    /// A migration requested with handle `ctx` fully committed.
    fn gas_migrate_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, block: u64);
    /// A runtime free requested with handle `ctx` fully committed.
    fn gas_free_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, block: u64);
    /// An operation failed terminally: its deadline passed (the sweep
    /// reclaimed it) or its retry budget ran out. The typed error reaches
    /// the initiator here instead of a panic or a silent hang.
    fn gas_op_failed(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, gva: Gva, err: OpError);
}
