//! The GAS operation state machines: memput, memget, routing, pinning, and
//! the protocol handlers.
//!
//! Every operation follows the same skeleton — resolve a target, take the
//! mode's fast path, recover through the home directory when the fast path
//! bounces — but the fast paths differ structurally, and that difference is
//! the paper:
//!
//! * **PGAS** — the initiator *computes* the physical placement (home from
//!   the address bits, physical base from the replicated allocation map)
//!   and issues plain RDMA. No translation state anywhere; no mobility.
//! * **AGAS-SW** — the initiator sends a two-sided [`GasMsg::SwPut`] /
//!   [`GasMsg::SwGet`] parcel; the owner's **CPU** translates through its
//!   BTT, performs the copy, and replies. Every byte of remote access
//!   consumes target cores.
//! * **AGAS-NET** — the initiator issues RDMA on the *virtual* block key;
//!   the owner's **NIC** translates. The target CPU is never involved; a
//!   stale target answers with a NACK (or NIC-forwards), and the initiator
//!   re-resolves through the home and retries.
//!
//! In-flight operations live in the initiator's generational
//! [`netsim::OpTable`]: wire messages carry the typed [`OpId`] handle, and a
//! completion naming an unknown or stale handle is counted
//! (`stale_completions`) and dropped instead of panicking. Each entry
//! carries its issue time, attempt count, and optional deadline; the
//! per-locality sweep ([`GasConfig::op_deadline`]) turns a lost completion
//! into a deterministic [`OpError::DeadlineExceeded`] delivered through
//! [`GasWorld::gas_op_failed`].
//!
//! [`GasConfig::op_deadline`]: crate::GasConfig::op_deadline

use crate::check::{value_hash, WordEvent, WordOp};
use crate::gva::Gva;
use crate::{
    GasMode, GasMsg, GasWorld, HistEvent, HistKind, OpPayload, OpPhase, OwnerHint, PendingOp,
};
use netsim::{
    send_user_classed, AmoKey, AmoOp, AmoResult, Engine, FaultClass, LocalityId, NackReason,
    OpError, OpId, OpKind, OpOutcome, PhysAddr, RdmaTarget, ShmDomain, Time, TraceKind,
};
use photon::{pwc_amo, pwc_get, pwc_put};

fn copy_time(per_byte_ps: u64, len: usize) -> Time {
    Time::from_ps(len as u64 * per_byte_ps)
}

/// Record an operation's completion latency (nanosecond samples).
fn record_latency<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, p: &PendingOp, done: Time) {
    let ns = done.saturating_sub(p.issued).as_ns();
    let g = eng.state.gas(loc);
    match p.payload {
        OpPayload::Put { .. } => g.put_latency.record(ns),
        OpPayload::Get { .. } => g.get_latency.record(ns),
        OpPayload::Amo { .. } => g.amo_latency.record(ns),
    }
}

/// The retry-stable responder-cache identity of an AMO: the initiator
/// plus the *GAS-level* pending-op handle, which survives transport
/// re-issue (photon attempt ids do not).
fn amo_key(loc: LocalityId, op: OpId) -> AmoKey {
    (loc, op.raw())
}

/// Append the word-level history events a completed AMO implies (no-op
/// when history recording is off). No-op observations (zero-operand
/// fetch-add, failed CAS, identity masked-put) log as reads so the
/// uniqueness rule only counts mutating consumption.
fn log_amo_words<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    gva: Gva,
    amo: &AmoOp,
    result: &AmoResult,
    issued: Time,
    done: Time,
) {
    if !eng.state.gas(loc).cfg.record_history {
        return;
    }
    let off = gva.offset();
    let evs: Vec<(u64, WordOp)> = match amo {
        AmoOp::FetchAdd { operand } => {
            if *operand == 0 {
                vec![(off, WordOp::Read { value: result.old })]
            } else {
                vec![(
                    off,
                    WordOp::Rmw {
                        read: result.old,
                        written: result.old.wrapping_add(*operand),
                    },
                )]
            }
        }
        AmoOp::CompareSwap { desired, .. } => {
            if result.applied && *desired != result.old {
                vec![(
                    off,
                    WordOp::Rmw {
                        read: result.old,
                        written: *desired,
                    },
                )]
            } else {
                vec![(off, WordOp::Read { value: result.old })]
            }
        }
        AmoOp::MaskedPut { mask, value } => {
            let written = (result.old & !mask) | (value & mask);
            if written == result.old {
                vec![(off, WordOp::Read { value: result.old })]
            } else {
                vec![(
                    off,
                    WordOp::Rmw {
                        read: result.old,
                        written,
                    },
                )]
            }
        }
        AmoOp::Scatter { writes } => writes
            .iter()
            .map(|&(o, v)| (o, WordOp::Write { value: v }))
            .collect(),
        AmoOp::Gather { offsets } => offsets
            .iter()
            .zip(&result.values)
            .map(|(&o, &v)| (o, WordOp::Read { value: v }))
            .collect(),
    };
    let block = gva.block_key();
    let g = eng.state.gas(loc);
    for (offset, op) in evs {
        g.word_history.push(WordEvent {
            block,
            offset,
            op,
            issued,
            done: Some(done),
            ok: true,
            loc,
        });
    }
}

/// Append what a *terminally failed* AMO may still have done to memory:
/// scatter words stay candidate producers (their values are known), word
/// RMWs leave an opaque marker that exempts their word from the strict
/// rules, and gathers have no effect at all.
fn log_amo_failure<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, p: &PendingOp) {
    let OpPayload::Amo { op: amo } = &p.payload else {
        return;
    };
    if !eng.state.gas(loc).cfg.record_history {
        return;
    }
    let evs: Vec<(u64, WordOp)> = match amo {
        AmoOp::Scatter { writes } => writes
            .iter()
            .map(|&(o, v)| (o, WordOp::Write { value: v }))
            .collect(),
        AmoOp::Gather { .. } => Vec::new(),
        _ => vec![(p.gva.offset(), WordOp::Opaque)],
    };
    let block = p.gva.block_key();
    let issued = p.issued;
    let g = eng.state.gas(loc);
    for (offset, op) in evs {
        g.word_history.push(WordEvent {
            block,
            offset,
            op,
            issued,
            done: None,
            ok: false,
            loc,
        });
    }
}

/// Append the issue-side history event for an op (history recording on).
fn hist_issue(
    g: &mut crate::GasLocal,
    loc: LocalityId,
    kind: HistKind,
    gva: Gva,
    len: u32,
    value: u64,
    now: Time,
) -> Option<usize> {
    if !g.cfg.record_history {
        return None;
    }
    g.history.push(HistEvent {
        kind,
        block: gva.block_key(),
        offset: gva.offset(),
        len,
        value,
        issued: now,
        done: None,
        ok: false,
        loc,
    });
    Some(g.history.len() - 1)
}

/// Mark an op's history event complete (and, for gets, record the value
/// fingerprint the initiator observed).
fn hist_done<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    hist: Option<usize>,
    now: Time,
    value: Option<u64>,
) {
    if let Some(i) = hist {
        let e = &mut eng.state.gas(loc).history[i];
        e.done = Some(now);
        e.ok = true;
        if let Some(v) = value {
            e.value = v;
        }
    }
}

fn scratch_class(len: u32) -> u8 {
    let needed = len.max(8);
    (u32::BITS - (needed - 1).leading_zeros()) as u8
}

/// Open the op's trace span (no-op when tracing is disabled).
fn open_span<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, op: OpId) {
    let t = eng.now();
    eng.state
        .cluster()
        .tracer
        .record(t, TraceKind::OpSpanOpen { at: loc, op });
}

/// Close the op's trace span with its outcome.
fn close_span<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, op: OpId, ok: bool) {
    let t = eng.now();
    eng.state
        .cluster()
        .tracer
        .record(t, TraceKind::OpSpanClose { at: loc, op, ok });
}

/// Record a successful outcome and close the span.
fn finish_ok<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, op: OpId) {
    eng.state.gas(loc).outcomes.record(OpOutcome::Completed);
    close_span(eng, loc, op, true);
}

/// Terminally fail a removed op: release its scratch, count it, close its
/// span, and deliver the typed error to the initiator.
fn fail_op<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    id: OpId,
    p: PendingOp,
    err: OpError,
    outcome: OpOutcome,
) {
    log_amo_failure(eng, loc, &p);
    if let OpPayload::Get {
        scratch: Some((addr, class)),
        ..
    } = p.payload
    {
        eng.state.cluster().mem_mut(loc).free_block(addr, class);
    }
    let g = eng.state.gas(loc);
    g.stats.ops_failed += 1;
    g.outcomes.record(outcome);
    close_span(eng, loc, id, false);
    S::gas_op_failed(eng, loc, p.ctx, p.gva, err);
}

/// Write `data` to the global address `gva`. Completion arrives via
/// [`GasWorld::gas_put_done`] with `ctx`; terminal failure (deadline,
/// retries exhausted) via [`GasWorld::gas_op_failed`]. The write must stay
/// within one block (use [`crate::GlobalArray::chunks`] to split larger
/// ranges).
pub fn memput<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    gva: Gva,
    data: Vec<u8>,
    ctx: OpId,
) {
    assert!(
        gva.offset() + data.len() as u64 <= gva.block_size(),
        "memput crosses a block boundary"
    );
    assert!(!data.is_empty(), "empty memput");
    let now = eng.now();
    let g = eng.state.gas(loc);
    g.stats.puts += 1;
    let deadline = g.cfg.op_deadline.map(|d| now + d);
    let vhash = if g.cfg.record_history {
        value_hash(&data)
    } else {
        0
    };
    let hist = hist_issue(g, loc, HistKind::Put, gva, data.len() as u32, vhash, now);
    let op = g.pending.insert(PendingOp {
        payload: OpPayload::Put { data },
        gva,
        ctx,
        attempts: 0,
        issued: now,
        deadline,
        phase: OpPhase::Issued,
        force_sw: false,
        attempt: None,
        hist,
    });
    open_span(eng, loc, op);
    arm_sweep(eng, loc);
    issue(eng, loc, op);
}

/// Read `len` bytes from the global address `gva`. Completion (with the
/// data) arrives via [`GasWorld::gas_get_done`] with `ctx`; terminal
/// failure via [`GasWorld::gas_op_failed`].
pub fn memget<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, gva: Gva, len: u32, ctx: OpId) {
    assert!(
        gva.offset() + len as u64 <= gva.block_size(),
        "memget crosses a block boundary"
    );
    assert!(len > 0, "empty memget");
    let now = eng.now();
    let g = eng.state.gas(loc);
    g.stats.gets += 1;
    let deadline = g.cfg.op_deadline.map(|d| now + d);
    let hist = hist_issue(g, loc, HistKind::Get, gva, len, 0, now);
    let op = g.pending.insert(PendingOp {
        payload: OpPayload::Get { len, scratch: None },
        gva,
        ctx,
        attempts: 0,
        issued: now,
        deadline,
        phase: OpPhase::Issued,
        force_sw: false,
        attempt: None,
        hist,
    });
    open_span(eng, loc, op);
    arm_sweep(eng, loc);
    issue(eng, loc, op);
}

/// Vectored [`memput`]: issue every `(gva, data, ctx)` write at the same
/// instant. Each element completes (or fails) independently through
/// [`GasWorld::gas_put_done`] / [`GasWorld::gas_op_failed`]. Same-instant
/// issue is what the photon descriptor rings batch on: a vectored put whose
/// elements share a responder packs into one submission batch and rides a
/// single doorbell instead of one per element.
pub fn put_many<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    puts: Vec<(Gva, Vec<u8>, OpId)>,
) {
    for (gva, data, ctx) in puts {
        memput(eng, loc, gva, data, ctx);
    }
}

/// Vectored [`memget`]: issue every `(gva, len, ctx)` read at the same
/// instant. Each element completes independently through
/// [`GasWorld::gas_get_done`]; with descriptor rings enabled, same-peer
/// elements share one doorbell (see [`put_many`]).
pub fn get_many<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, gets: Vec<(Gva, u32, OpId)>) {
    for (gva, len, ctx) in gets {
        memget(eng, loc, gva, len, ctx);
    }
}

/// What shape of operation `issue` is routing (drives the fast-path
/// choice; the payload itself stays in the table).
#[derive(Clone, Copy, PartialEq, Eq)]
enum IssueKind {
    Put,
    Get,
    Amo,
}

/// Execute `amo` atomically against the word(s) at `gva`. Completion
/// (with the observed/old values) arrives via [`GasWorld::gas_amo_done`]
/// with `ctx`; terminal failure via [`GasWorld::gas_op_failed`].
///
/// Under [`GasMode::AgasNetwork`] the operation executes **at the target
/// NIC** in the same visit that translates the virtual block — the target
/// CPU schedules nothing on the hot path. AMOs are not idempotent, so the
/// retry machinery shares one dedup identity per op (`amo_key`: the
/// initiator plus the pending op's raw id, stable across re-issue)
/// with the target-side responder cache: a duplicated or re-issued
/// request re-emits the remembered result instead of re-executing,
/// whichever path (NIC, software fallback, post-migration local commit)
/// the retry lands on.
pub fn memamo<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, gva: Gva, amo: AmoOp, ctx: OpId) {
    assert!(
        amo.bounds_ok(gva.offset(), gva.block_size()),
        "memamo touches words outside its block"
    );
    let now = eng.now();
    let g = eng.state.gas(loc);
    g.stats.amos += 1;
    let deadline = g.cfg.op_deadline.map(|d| now + d);
    let op = g.pending.insert(PendingOp {
        payload: OpPayload::Amo { op: amo },
        gva,
        ctx,
        attempts: 0,
        issued: now,
        deadline,
        phase: OpPhase::Issued,
        force_sw: false,
        attempt: None,
        // AMO words are checked by the word-level oracle, not the
        // byte-fingerprint history (workloads keep the slots disjoint).
        hist: None,
    });
    open_span(eng, loc, op);
    arm_sweep(eng, loc);
    issue(eng, loc, op);
}

/// (Re-)issue a pending operation along the active mode's fast path.
fn issue<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, op: OpId) {
    let mode = eng.state.gas_mode();
    let (gva, kind, force_sw) = {
        let g = eng.state.gas(loc);
        let Ok(p) = g.pending.get(op) else {
            return; // reclaimed (deadline sweep) between schedule and fire
        };
        let kind = match p.payload {
            OpPayload::Put { .. } => IssueKind::Put,
            OpPayload::Get { .. } => IssueKind::Get,
            OpPayload::Amo { .. } => IssueKind::Amo,
        };
        (p.gva, kind, p.force_sw)
    };
    let block = gva.block_key();
    let home = gva.home();

    match mode {
        GasMode::Pgas => {
            if home == loc {
                commit_local(eng, loc, op, None);
            } else if try_shm(eng, loc, op, gva, home) {
                // Co-located home: the access went over shared memory and
                // the NIC never saw it.
            } else if kind == IssueKind::Amo {
                // PGAS NICs translate nothing, so there is no virtual
                // path for a remote AMO to ride; the home's CPU executes
                // it (the software handler resolves through the
                // replicated placement map).
                eng.state.gas(loc).stats.remote_ops += 1;
                issue_sw(eng, loc, op, gva, home);
            } else {
                let base = *eng
                    .state
                    .pgas()
                    .get(&block)
                    .expect("PGAS op on unallocated block");
                let target = RdmaTarget::Phys(base + gva.offset());
                eng.state.gas(loc).stats.remote_ops += 1;
                issue_rdma(eng, loc, op, home, target, kind == IssueKind::Put);
            }
        }
        GasMode::AgasNetwork => {
            // One BTT probe decides residency AND yields the base for the
            // local commit (no second probe inside `commit_local`).
            if let Some(base) = resident_base(eng, loc, block) {
                commit_local(eng, loc, op, Some(base));
            } else {
                let serving = eng.state.gas_ref(loc).member.resolve(block, home);
                let target_loc = hint_owner(eng, loc, block, serving);
                if try_shm(eng, loc, op, gva, target_loc) {
                    // Intra-domain short-circuit. Valid even under
                    // `force_sw`: the shm path touches no NIC table, so
                    // capacity thrash cannot bounce it.
                } else if force_sw {
                    if target_loc == loc {
                        bounce(eng, loc, op, block);
                        return;
                    }
                    eng.state.gas(loc).stats.remote_ops += 1;
                    issue_sw(eng, loc, op, gva, target_loc);
                } else if kind == IssueKind::Amo {
                    eng.state.gas(loc).stats.remote_ops += 1;
                    issue_amo_rdma(eng, loc, op, gva, target_loc);
                } else {
                    let target = RdmaTarget::Virt {
                        block,
                        offset: gva.offset(),
                    };
                    eng.state.gas(loc).stats.remote_ops += 1;
                    issue_rdma(eng, loc, op, target_loc, target, kind == IssueKind::Put);
                }
            }
        }
        GasMode::AgasSoftware => {
            if let Some(base) = resident_base(eng, loc, block) {
                commit_local(eng, loc, op, Some(base));
            } else {
                let serving = eng.state.gas_ref(loc).member.resolve(block, home);
                let target_loc = hint_owner(eng, loc, block, serving);
                if target_loc == loc {
                    // A hint naming ourselves while the block is absent is
                    // stale by construction; re-resolve.
                    bounce(eng, loc, op, block);
                    return;
                }
                if try_shm(eng, loc, op, gva, target_loc) {
                    return;
                }
                eng.state.gas(loc).stats.remote_ops += 1;
                issue_sw(eng, loc, op, gva, target_loc);
            }
        }
    }
}

/// Issue the software (two-sided) remote access toward `target_loc`.
fn issue_sw<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    op: OpId,
    gva: Gva,
    target_loc: LocalityId,
) {
    let block = gva.block_key();
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    let (msg, wire) = {
        let g = eng.state.gas(loc);
        let Ok(p) = g.pending.get_mut(op) else {
            return;
        };
        p.phase = OpPhase::Sw;
        p.attempt = None; // any earlier photon attempt is superseded
        match &p.payload {
            OpPayload::Put { data } => (
                GasMsg::SwPut {
                    block,
                    offset: gva.offset(),
                    data: data.clone(),
                    ctx: op,
                    reply_to: loc,
                },
                data.len() as u32,
            ),
            OpPayload::Get { len, .. } => (
                GasMsg::SwGet {
                    block,
                    offset: gva.offset(),
                    len: *len,
                    ctx: op,
                    reply_to: loc,
                },
                ctrl,
            ),
            OpPayload::Amo { op: amo } => (
                GasMsg::SwAmo {
                    block,
                    offset: gva.offset(),
                    amo: amo.clone(),
                    key: amo_key(loc, op),
                    ctx: op,
                    reply_to: loc,
                },
                ctrl + 8 * amo.wire_words() as u32,
            ),
        }
    };
    send_user_classed(
        eng,
        loc,
        target_loc,
        wire,
        S::wrap_gas(msg),
        FaultClass::Request,
    );
}

// ------------------------------------------------------- shm fast path

/// The payload snapshot an intra-domain access carries to the target lane.
enum ShmPayload {
    Put { data: Vec<u8> },
    Get { len: u32 },
    Amo { amo: AmoOp },
}

/// Try the intra-domain shared-memory short-circuit for a remote op
/// believed to live at `target_loc`. Returns `true` when the op took the
/// shm path (or was reclaimed concurrently); `false` means the caller
/// issues over the fabric as usual.
///
/// The access pays [`ShmDomain::access`] for the mapped load/store plus
/// copy, commits against the target's arena, and sends **zero wire
/// messages**. If the block migrated out from under the mapping, the op
/// falls back to ordinary directory recovery ([`bounce`]).
fn try_shm<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    op: OpId,
    gva: Gva,
    target_loc: LocalityId,
) -> bool {
    let Some(shm) = eng.state.cluster_ref().config.shm else {
        return false;
    };
    if target_loc == loc || !shm.same_domain(loc, target_loc) {
        return false;
    }
    let payload = {
        let g = eng.state.gas(loc);
        let Ok(p) = g.pending.get_mut(op) else {
            return true; // reclaimed (deadline sweep); nothing to issue
        };
        p.phase = OpPhase::Shm;
        p.attempt = None; // any earlier photon attempt is superseded
        match &p.payload {
            OpPayload::Put { data } => ShmPayload::Put { data: data.clone() },
            OpPayload::Get { len, .. } => ShmPayload::Get { len: *len },
            OpPayload::Amo { op } => ShmPayload::Amo { amo: op.clone() },
        }
    };
    let bytes = match &payload {
        ShmPayload::Put { data } => data.len() as u32,
        ShmPayload::Get { len } => *len,
        ShmPayload::Amo { amo } => 8 * amo.touched_words() as u32,
    };
    {
        let g = eng.state.gas(loc);
        g.stats.remote_ops += 1;
        g.stats.shm_ops += 1;
        g.stats.shm_bytes += bytes as u64;
    }
    netsim::telemetry::record_shm(1, bytes as u64);
    let now = eng.now();
    eng.state.cluster().tracer.record(
        now,
        TraceKind::ShmOp {
            src: loc,
            dst: target_loc,
            bytes,
        },
    );
    // The commit runs on the target's lane (its arena, BTT, and responder
    // cache live there); the hop is a simulation artifact of shard
    // ownership, not a message. `access()` >= `load_store` >= the sharded
    // engine's shm-aware lookahead, so the hop respects the window.
    let at = now + shm.access(bytes);
    eng.schedule_at_loc(at, target_loc, move |eng| {
        shm_commit(eng, loc, target_loc, op, gva, payload, shm)
    });
    true
}

/// Commit an intra-domain access at the co-located target's lane, then
/// deliver the completion back on the initiator's lane.
fn shm_commit<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    target: LocalityId,
    op: OpId,
    gva: Gva,
    payload: ShmPayload,
    shm: ShmDomain,
) {
    let block = gva.block_key();
    // Re-check residency at commit time: a migration may have raced the
    // access (PGAS placements never move, so the map lookup cannot fail).
    let base = match eng.state.gas_mode() {
        GasMode::Pgas => eng.state.pgas().get(&block).copied(),
        _ => resident_base(eng, target, block),
    };
    let back = eng.now() + shm.load_store;
    let Some(base) = base else {
        // The mapping is stale (block migrated / freed): hop home and run
        // ordinary directory recovery.
        eng.schedule_at_loc(back, loc, move |eng| {
            if eng.state.gas(loc).pending.contains(op) {
                bounce(eng, loc, op, block);
            } else {
                eng.state.gas(loc).stats.stale_completions += 1;
            }
        });
        return;
    };
    let phys = base + gva.offset();
    match payload {
        ShmPayload::Put { data } => {
            eng.state
                .cluster()
                .mem_mut(target)
                .write(phys, &data)
                .expect("shm put outside arena");
            eng.schedule_at_loc(back, loc, move |eng| shm_put_finish(eng, loc, op));
        }
        ShmPayload::Get { len } => {
            let data = eng
                .state
                .cluster()
                .mem(target)
                .read(phys, len as usize)
                .expect("shm get outside arena")
                .to_vec();
            eng.schedule_at_loc(back, loc, move |eng| shm_get_finish(eng, loc, op, data));
        }
        ShmPayload::Amo { amo } => {
            // Same dedup identity and responder cache as the NIC, software,
            // and local-commit paths: a retry that switches paths still
            // applies exactly once.
            let key = amo_key(loc, op);
            let cached = eng
                .state
                .cluster()
                .loc_mut(target)
                .nic
                .amo
                .lookup(key)
                .cloned();
            let result = match cached {
                Some(r) => {
                    eng.state.gas(target).stats.amo_replays += 1;
                    r
                }
                None => {
                    let r = {
                        let slice = eng
                            .state
                            .cluster()
                            .mem_mut(target)
                            .slice_mut(base, gva.block_size() as usize)
                            .expect("shm AMO storage outside arena");
                        netsim::amo::execute(&amo, slice, gva.offset())
                    };
                    if amo.mutates() {
                        eng.state
                            .cluster()
                            .loc_mut(target)
                            .nic
                            .amo
                            .install(key, block, r.clone());
                    }
                    r
                }
            };
            eng.schedule_at_loc(back, loc, move |eng| complete_amo(eng, loc, op, result));
        }
    }
}

/// Finish a put that committed over shared memory (initiator's lane).
fn shm_put_finish<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, op: OpId) {
    let p = match eng.state.gas(loc).pending.remove(op) {
        Ok(p) => p,
        Err(_) => {
            eng.state.gas(loc).stats.stale_completions += 1;
            return;
        }
    };
    let now = eng.now();
    record_latency(eng, loc, &p, now);
    hist_done(eng, loc, p.hist, now, None);
    finish_ok(eng, loc, op);
    S::gas_put_done(eng, loc, p.ctx);
}

/// Finish a get that committed over shared memory (initiator's lane).
fn shm_get_finish<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, op: OpId, data: Vec<u8>) {
    let p = match eng.state.gas(loc).pending.remove(op) {
        Ok(p) => p,
        Err(_) => {
            eng.state.gas(loc).stats.stale_completions += 1;
            return;
        }
    };
    let now = eng.now();
    record_latency(eng, loc, &p, now);
    if let OpPayload::Get {
        scratch: Some((addr, class)),
        ..
    } = p.payload
    {
        // An earlier RDMA attempt left a scratch buffer behind; the shm
        // path never needs one.
        eng.state.cluster().mem_mut(loc).free_block(addr, class);
    }
    let vhash = p.hist.map(|_| value_hash(&data));
    hist_done(eng, loc, p.hist, now, vhash);
    finish_ok(eng, loc, op);
    S::gas_get_done(eng, loc, p.ctx, data);
}

/// One BTT probe answering "resident here?" and, when yes, at what base —
/// so the issue path's residency check and the local commit share a single
/// probe sequence.
fn resident_base<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, block: u64) -> Option<u64> {
    eng.state
        .gas(loc)
        .btt
        .lookup(block)
        .and_then(|e| (e.state == crate::BlockState::Resident).then_some(e.base))
}

fn hint_owner<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    block: u64,
    home: LocalityId,
) -> LocalityId {
    eng.state
        .gas(loc)
        .cache
        .lookup(block)
        .map(|h| h.owner)
        .unwrap_or(home)
}

fn issue_rdma<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    op: OpId,
    target_loc: LocalityId,
    target: RdmaTarget,
    is_put: bool,
) {
    if is_put {
        let data = {
            let g = eng.state.gas(loc);
            let Ok(p) = g.pending.get_mut(op) else {
                return;
            };
            p.phase = OpPhase::Rdma;
            match &p.payload {
                OpPayload::Put { data } => data.clone(),
                OpPayload::Get { .. } | OpPayload::Amo { .. } => unreachable!(),
            }
        };
        let att = pwc_put(eng, loc, target_loc, target, data, op, None, None);
        if let Ok(p) = eng.state.gas(loc).pending.get_mut(op) {
            p.attempt = Some(att);
        }
    } else {
        // Ensure a scratch landing buffer exists (reused across retries).
        let (len, scratch) = {
            let g = eng.state.gas(loc);
            let Ok(p) = g.pending.get_mut(op) else {
                return;
            };
            p.phase = OpPhase::Rdma;
            match &p.payload {
                OpPayload::Get { len, scratch } => (*len, *scratch),
                OpPayload::Put { .. } | OpPayload::Amo { .. } => unreachable!(),
            }
        };
        let (addr, class) = match scratch {
            Some(s) => s,
            None => {
                let class = scratch_class(len);
                let addr = eng
                    .state
                    .cluster()
                    .mem_mut(loc)
                    .alloc_block(class)
                    .expect("scratch allocation failed");
                let g = eng.state.gas(loc);
                if let Ok(p) = g.pending.get_mut(op) {
                    if let OpPayload::Get { scratch, .. } = &mut p.payload {
                        *scratch = Some((addr, class));
                    }
                }
                (addr, class)
            }
        };
        let _ = class;
        // Scratch buffers come from the runtime's pre-registered pool.
        let att = pwc_get(eng, loc, target_loc, target, len, addr, op, None);
        if let Ok(p) = eng.state.gas(loc).pending.get_mut(op) {
            p.attempt = Some(att);
        }
    }
}

/// Issue the one-sided NIC-executed AMO toward `target_loc`: translation
/// and execution happen in the target NIC's single visit, and the
/// completion (or NACK/forward outcome) comes back through the photon
/// layer like any other PWC op.
fn issue_amo_rdma<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    op: OpId,
    gva: Gva,
    target_loc: LocalityId,
) {
    let amo = {
        let g = eng.state.gas(loc);
        let Ok(p) = g.pending.get_mut(op) else {
            return;
        };
        p.phase = OpPhase::Rdma;
        match &p.payload {
            OpPayload::Amo { op } => op.clone(),
            _ => unreachable!(),
        }
    };
    let att = pwc_amo(
        eng,
        loc,
        target_loc,
        gva.block_key(),
        gva.offset(),
        amo,
        amo_key(loc, op),
        op,
    );
    if let Ok(p) = eng.state.gas(loc).pending.get_mut(op) {
        p.attempt = Some(att);
    }
}

/// Commit an operation against locally resident storage.
/// `base_hint` carries the physical base from the caller's own BTT probe
/// (see [`resident_base`]) so the commit doesn't re-translate.
fn commit_local<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    op: OpId,
    base_hint: Option<netsim::PhysAddr>,
) {
    let mode = eng.state.gas_mode();
    let (gva, len, per_byte) = {
        let g = eng.state.gas(loc);
        let Ok(p) = g.pending.get(op) else {
            return;
        };
        let len = match &p.payload {
            OpPayload::Put { data } => data.len(),
            OpPayload::Get { len, .. } => *len as usize,
            OpPayload::Amo { op } => 8 * op.touched_words(),
        };
        (p.gva, len, g.cfg.copy_per_byte_ps)
    };
    let block = gva.block_key();
    let base = match mode {
        GasMode::Pgas => *eng
            .state
            .pgas()
            .get(&block)
            .expect("PGAS local op on unknown block"),
        _ => base_hint.unwrap_or_else(|| {
            eng.state
                .gas(loc)
                .btt
                .lookup(block)
                .expect("local commit without residency")
                .base
        }),
    };
    let phys = base + gva.offset();
    let g = eng.state.gas(loc);
    g.stats.local_ops += 1;
    let delay = g.cfg.local_op + copy_time(per_byte, len);
    // Perform the memory effect now (deterministic), deliver the callback
    // after the modeled local latency.
    let now = eng.now();
    let Ok(p) = eng.state.gas(loc).pending.remove(op) else {
        return;
    };
    record_latency(eng, loc, &p, now + delay);
    finish_ok(eng, loc, op);
    let hist = p.hist;
    match p.payload {
        OpPayload::Put { data } => {
            eng.state
                .cluster()
                .mem_mut(loc)
                .write(phys, &data)
                .expect("local memput out of bounds");
            hist_done(eng, loc, hist, now, None);
            let ctx = p.ctx;
            eng.schedule(delay, move |eng| S::gas_put_done(eng, loc, ctx));
        }
        OpPayload::Get { len, scratch } => {
            if let Some((addr, class)) = scratch {
                eng.state.cluster().mem_mut(loc).free_block(addr, class);
            }
            let data = eng
                .state
                .cluster()
                .mem(loc)
                .read(phys, len as usize)
                .expect("local memget out of bounds")
                .to_vec();
            let vhash = hist.map(|_| value_hash(&data));
            hist_done(eng, loc, hist, now, vhash);
            let ctx = p.ctx;
            eng.schedule(delay, move |eng| S::gas_get_done(eng, loc, ctx, data));
        }
        OpPayload::Amo { op: amo } => {
            // An earlier attempt may already have executed remotely (and
            // its block since migrated here, cache entries riding along),
            // so consult the responder cache before touching memory —
            // AMOs must apply exactly once across path switches.
            let key = amo_key(loc, op);
            let block = gva.block_key();
            let cached = eng
                .state
                .cluster()
                .loc_mut(loc)
                .nic
                .amo
                .lookup(key)
                .cloned();
            let result = match cached {
                Some(r) => {
                    eng.state.gas(loc).stats.amo_replays += 1;
                    r
                }
                None => {
                    let r = {
                        let slice = eng
                            .state
                            .cluster()
                            .mem_mut(loc)
                            .slice_mut(base, gva.block_size() as usize)
                            .expect("resident block outside arena");
                        netsim::amo::execute(&amo, slice, gva.offset())
                    };
                    // Reads re-execute harmlessly; only mutations need
                    // (and may consume) replay-cache slots.
                    if amo.mutates() {
                        eng.state
                            .cluster()
                            .loc_mut(loc)
                            .nic
                            .amo
                            .install(key, block, r.clone());
                    }
                    r
                }
            };
            log_amo_words(eng, loc, gva, &amo, &result, p.issued, now);
            let ctx = p.ctx;
            eng.schedule(delay, move |eng| S::gas_amo_done(eng, loc, ctx, result));
        }
    }
}

/// A fast path bounced: invalidate the hint and re-resolve via the home.
/// When the retry budget runs out the op fails terminally with
/// [`OpError::RetriesExhausted`] instead of asserting.
fn bounce<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, op: OpId, block: u64) {
    // Re-resolve through the *serving* home: a membership event (join
    // slice, drain hand-off, crash take-over) may have moved the block's
    // directory duty off its encoded home.
    let home = eng
        .state
        .gas_ref(loc)
        .member
        .resolve(block, Gva(block).home());
    let (give_up, attempts, stale_attempt) = {
        let g = eng.state.gas(loc);
        let Ok(p) = g.pending.get_mut(op) else {
            return; // completed (or reclaimed) concurrently; nothing to retry
        };
        let stale_attempt = p.attempt.take();
        p.attempts += 1;
        p.phase = OpPhase::DirRecovery;
        let attempts = p.attempts;
        let mut sw_fallback = false;
        if !p.force_sw && attempts >= 3 {
            // Persistent NIC-table misses (capacity thrash): degrade to the
            // software path, which cannot miss at the true owner.
            p.force_sw = true;
            sw_fallback = true;
        }
        g.stats.retries += 1;
        g.cache.invalidate(block);
        g.stats.dir_queries += 1;
        if sw_fallback {
            g.stats.sw_fallbacks += 1;
        }
        g.outcomes.record(OpOutcome::Retried { attempt: attempts });
        (attempts > g.cfg.max_attempts, attempts, stale_attempt)
    };
    // Retire the superseded photon attempt so a late echo of it (a delayed
    // or duplicated completion) is dropped as stale instead of completing
    // the re-issued op, and so a lost completion can't leak endpoint state.
    if let Some(att) = stale_attempt {
        eng.state.endpoint(loc).cancel_op(att);
    }
    if give_up {
        let Ok(p) = eng.state.gas(loc).pending.remove(op) else {
            return;
        };
        let now = eng.now();
        let age = now.saturating_sub(p.issued);
        // Counted under deadline_exceeded: the op exceeded its retry budget
        // and was given up on.
        fail_op(
            eng,
            loc,
            op,
            p,
            OpError::RetriesExhausted { id: op, attempts },
            OpOutcome::DeadlineExceeded { age, attempts },
        );
        return;
    }
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    send_user_classed(
        eng,
        loc,
        home,
        ctrl,
        S::wrap_gas(GasMsg::DirQuery {
            block,
            ctx: op,
            reply_to: loc,
        }),
        FaultClass::Request,
    );
}

// ------------------------------------------------------------ deadline sweep

/// Arm the per-locality deadline sweep if deadlines are configured and it is
/// not already running. Called on every op issue; the sweep keeps
/// re-scheduling itself while ops remain in flight and disarms when the
/// table drains, so an idle locality schedules nothing.
pub(crate) fn arm_sweep<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId) {
    let g = eng.state.gas(loc);
    if g.sweep_armed || g.cfg.op_deadline.is_none() {
        return;
    }
    g.sweep_armed = true;
    let interval = g.cfg.sweep_interval;
    eng.schedule(interval, move |eng| sweep(eng, loc));
}

/// Reclaim every in-flight op whose deadline has passed, delivering a
/// deterministic [`OpError::DeadlineExceeded`] to each initiator. A lost
/// completion (dropped NACK, vanished endpoint state) thus becomes a typed
/// failure instead of a hang.
fn sweep<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId) {
    let now = eng.now();
    let (retry_on, max_attempts, op_deadline) = {
        let g = eng.state.gas(loc);
        (
            g.cfg.retry_on_deadline,
            g.cfg.max_attempts,
            g.cfg.op_deadline,
        )
    };
    // Recovery mode ([`GasConfig::retry_on_deadline`]): an expired op that
    // still has bounce budget is presumed to have *lost* a message (the
    // fault plane dropped a request or completion) rather than merely being
    // slow; re-resolve it through the home directory instead of failing it.
    // The deadline is refreshed so the next sweep leaves the retry alone.
    if retry_on {
        let extension = op_deadline.expect("sweep runs only with deadlines configured");
        let candidates: Vec<(OpId, u64)> = eng
            .state
            .gas(loc)
            .pending
            .iter()
            .filter(|(_, p)| p.deadline.is_some_and(|d| d <= now) && p.attempts < max_attempts)
            .map(|(id, p)| (id, p.gva.block_key()))
            .collect();
        for (id, block) in candidates {
            let already_scheduled = {
                let g = eng.state.gas(loc);
                let Ok(p) = g.pending.get_mut(id) else {
                    continue;
                };
                p.deadline = Some(now + extension);
                // A Backoff-phase op already has its re-issue scheduled;
                // extending the deadline is the whole recovery.
                p.phase == OpPhase::Backoff
            };
            if !already_scheduled {
                eng.state.gas(loc).stats.deadline_retries += 1;
                bounce(eng, loc, id, block);
            }
        }
    }
    let expired = eng
        .state
        .gas(loc)
        .pending
        .drain_filter(|_, p| p.deadline.is_some_and(|d| d <= now));
    for (id, p) in expired {
        let age = now.saturating_sub(p.issued);
        let attempts = p.attempts;
        eng.state.gas(loc).stats.deadline_exceeded += 1;
        fail_op(
            eng,
            loc,
            id,
            p,
            OpError::DeadlineExceeded { id, age, attempts },
            OpOutcome::DeadlineExceeded { age, attempts },
        );
    }
    let g = eng.state.gas(loc);
    if g.pending.is_empty() {
        g.sweep_armed = false;
    } else {
        let interval = g.cfg.sweep_interval;
        eng.schedule(interval, move |eng| sweep(eng, loc));
    }
}

// ---------------------------------------------------------------- PWC glue

/// Route a [`photon::PhotonWorld::pwc_complete`] callback here. A stale or
/// unknown handle (the op was reclaimed by the deadline sweep, or the
/// message is a duplicate) is counted and dropped.
pub fn on_pwc_complete<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, ctx: OpId) {
    let p = match eng.state.gas(loc).pending.remove(ctx) {
        Ok(p) => p,
        Err(_) => {
            eng.state.gas(loc).stats.stale_completions += 1;
            return;
        }
    };
    let now = eng.now();
    record_latency(eng, loc, &p, now);
    match p.payload {
        OpPayload::Put { .. } => {
            hist_done(eng, loc, p.hist, now, None);
            finish_ok(eng, loc, ctx);
            S::gas_put_done(eng, loc, p.ctx);
        }
        OpPayload::Get { len, scratch } => {
            let Some((addr, class)) = scratch else {
                // Unreachable via the wire (gets allocate scratch before
                // issue); counted as a violation rather than panicking.
                let g = eng.state.gas(loc);
                g.stats.protocol_violations += 1;
                g.stats.ops_failed += 1;
                g.outcomes.record(OpOutcome::ProtocolViolation);
                close_span(eng, loc, ctx, false);
                S::gas_op_failed(
                    eng,
                    loc,
                    p.ctx,
                    p.gva,
                    OpError::ProtocolViolation {
                        detail: "get completed without a scratch buffer",
                    },
                );
                return;
            };
            let data = eng
                .state
                .cluster()
                .mem(loc)
                .read(addr, len as usize)
                .expect("scratch vanished")
                .to_vec();
            eng.state.cluster().mem_mut(loc).free_block(addr, class);
            let vhash = p.hist.map(|_| value_hash(&data));
            hist_done(eng, loc, p.hist, now, vhash);
            finish_ok(eng, loc, ctx);
            S::gas_get_done(eng, loc, p.ctx, data);
        }
        OpPayload::Amo { .. } => {
            // AMOs complete through the result-carrying path; a bare
            // completion means crossed wires somewhere below us.
            let g = eng.state.gas(loc);
            g.stats.protocol_violations += 1;
            g.stats.ops_failed += 1;
            g.outcomes.record(OpOutcome::ProtocolViolation);
            close_span(eng, loc, ctx, false);
            S::gas_op_failed(
                eng,
                loc,
                p.ctx,
                p.gva,
                OpError::ProtocolViolation {
                    detail: "result-less completion for an AMO op",
                },
            );
        }
    }
}

/// Finish a pending AMO with `result`, whichever path delivered it (NIC
/// completion via [`on_pwc_amo_complete`], or a [`GasMsg::SwAmoReply`]).
/// Stale or duplicated completions are counted and dropped.
fn complete_amo<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, id: OpId, result: AmoResult) {
    let p = match eng.state.gas(loc).pending.remove(id) {
        Ok(p) => p,
        Err(_) => {
            eng.state.gas(loc).stats.stale_completions += 1;
            return;
        }
    };
    let now = eng.now();
    record_latency(eng, loc, &p, now);
    let OpPayload::Amo { op: amo } = &p.payload else {
        // An AMO completion naming a put/get op: the wire protocol was
        // violated; fail the op rather than fabricating a result.
        let g = eng.state.gas(loc);
        g.stats.protocol_violations += 1;
        g.stats.ops_failed += 1;
        g.outcomes.record(OpOutcome::ProtocolViolation);
        close_span(eng, loc, id, false);
        S::gas_op_failed(
            eng,
            loc,
            p.ctx,
            p.gva,
            OpError::ProtocolViolation {
                detail: "AMO completion for a non-AMO op",
            },
        );
        return;
    };
    let amo = amo.clone();
    log_amo_words(eng, loc, p.gva, &amo, &result, p.issued, now);
    finish_ok(eng, loc, id);
    S::gas_amo_done(eng, loc, p.ctx, result);
}

/// Route a [`photon::PhotonWorld::pwc_amo_complete`] callback here: the
/// target NIC executed (or replayed) the op and its result came back on
/// the completion path.
pub fn on_pwc_amo_complete<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    ctx: OpId,
    result: AmoResult,
) {
    complete_amo(eng, loc, ctx, result);
}

/// Route a [`photon::PhotonWorld::xlate_miss_local`] callback here: the
/// local NIC missed its table for an incoming one-sided operation. If the
/// block is in fact resident (the entry was evicted under capacity
/// pressure), software reinstalls it — the hardware analogue of a TLB miss
/// handler. The bounced initiator's retry then hits.
pub fn on_xlate_miss<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, block: u64) {
    if eng.state.gas_mode() != GasMode::AgasNetwork {
        return;
    }
    // One probe: the copied entry answers both "owned here?" and
    // "resident?" (mid-migration blocks defer to the forwarding tombstone).
    let Some(entry) = eng.state.gas(loc).btt.lookup(block).copied() else {
        return; // genuinely absent (migrated away / freed): nothing to do
    };
    if entry.state != crate::BlockState::Resident {
        return; // mid-migration: the forwarding tombstone is authoritative
    }
    // Reinstalling is a software interrupt: charge the CPU briefly.
    let service = eng.state.gas(loc).cfg.dir_lookup;
    let now = eng.now();
    let (_, finish) = eng.state.cpu(loc).admit(now, service);
    eng.state.cluster().loc_mut(loc).counters.cpu_busy += service;
    eng.schedule_at(finish, move |eng| {
        // Re-check: the block may have started moving while queued.
        if !eng.state.gas(loc).btt.is_resident(block) {
            return;
        }
        eng.state.cluster().install_xlate(
            loc,
            block,
            netsim::XlateEntry {
                base: entry.base,
                len: 1u64 << entry.class,
                generation: entry.generation,
            },
        );
    });
}

/// Route a [`photon::PhotonWorld::pwc_failed`] callback here.
pub fn on_pwc_failed<S: GasWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    ctx: OpId,
    _kind: OpKind,
    reason: NackReason,
    block: u64,
) {
    let g = eng.state.gas(loc);
    if !g.pending.contains(ctx) {
        g.stats.stale_completions += 1;
        return;
    }
    g.outcomes.record(OpOutcome::Nacked { reason });
    bounce(eng, loc, ctx, block);
}

// ---------------------------------------------------------------- handlers

/// Handle a [`GasMsg`] delivered to `at` from `from`. The world's
/// [`netsim::Protocol::deliver`] routes GAS-decoding `User` packets here.
pub fn handle_msg<S: GasWorld>(eng: &mut Engine<S>, from: LocalityId, at: LocalityId, msg: GasMsg) {
    // A crashed locality is dead silicon: it neither serves nor consumes
    // protocol traffic. The fault plane already blackholes its links, but
    // Bypass-class messages (migration control, shm doorbells) dodge the
    // plane by design — discard them here. Inert membership views make
    // both checks free no-ops.
    {
        let member = &eng.state.gas_ref(at).member;
        if member.is_crashed(at) || member.is_crashed(from) {
            return;
        }
    }
    match msg {
        GasMsg::SwPut { .. } | GasMsg::SwGet { .. } | GasMsg::SwAmo { .. } => {
            handle_sw_access(eng, at, msg)
        }
        GasMsg::SwAmoReply { ctx, result } => complete_amo(eng, at, ctx, result),
        GasMsg::SwPutAck { ctx } => {
            let p = match eng.state.gas(at).pending.remove(ctx) {
                Ok(p) => p,
                Err(_) => {
                    eng.state.gas(at).stats.stale_completions += 1;
                    return;
                }
            };
            let now = eng.now();
            record_latency(eng, at, &p, now);
            hist_done(eng, at, p.hist, now, None);
            finish_ok(eng, at, ctx);
            S::gas_put_done(eng, at, p.ctx);
        }
        GasMsg::SwGetReply { ctx, data } => {
            let p = match eng.state.gas(at).pending.remove(ctx) {
                Ok(p) => p,
                Err(_) => {
                    eng.state.gas(at).stats.stale_completions += 1;
                    return;
                }
            };
            let now = eng.now();
            record_latency(eng, at, &p, now);
            if let OpPayload::Get {
                scratch: Some((addr, class)),
                ..
            } = p.payload
            {
                // A retry raced: the sw path answered an op that had a
                // scratch buffer from an earlier RDMA attempt.
                eng.state.cluster().mem_mut(at).free_block(addr, class);
            }
            let vhash = p.hist.map(|_| value_hash(&data));
            hist_done(eng, at, p.hist, now, vhash);
            finish_ok(eng, at, ctx);
            S::gas_get_done(eng, at, p.ctx, data);
        }
        GasMsg::SwRetry { ctx, block } => {
            if !eng.state.gas(at).pending.contains(ctx) {
                eng.state.gas(at).stats.stale_completions += 1;
                return;
            }
            bounce(eng, at, ctx, block);
        }
        GasMsg::DirQuery {
            block,
            ctx,
            reply_to,
        } => {
            // Directory lookups are software: they occupy the home's CPU.
            let service = eng.state.gas(at).cfg.dir_lookup;
            let now = eng.now();
            let (_, finish) = eng.state.cpu(at).admit(now, service);
            {
                let l = eng.state.cluster().loc_mut(at);
                l.counters.cpu_busy += service;
                l.counters.dir_lookups += 1;
            }
            eng.schedule_at(finish, move |eng| {
                // With the membership plane live, a query can legitimately
                // land at a home whose record moved (join slice or hand-off
                // in flight): answer SwRetry so the initiator re-resolves
                // through its (by then updated) view, bounded by its
                // attempts budget. Without membership the old invariant
                // stands: the home must know every block homed at it.
                let enabled = eng.state.gas_ref(at).member.is_enabled();
                let rec = if enabled {
                    eng.state.gas(at).dir.lookup_opt(block)
                } else {
                    Some(eng.state.gas(at).dir.lookup(block))
                };
                let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
                let reply = match rec {
                    Some(rec) => GasMsg::DirReply {
                        block,
                        owner: rec.owner,
                        generation: rec.generation,
                        ctx,
                    },
                    None => GasMsg::SwRetry { ctx, block },
                };
                send_user_classed(
                    eng,
                    at,
                    reply_to,
                    ctrl,
                    S::wrap_gas(reply),
                    FaultClass::Completion,
                );
            });
        }
        GasMsg::DirReply {
            block,
            owner,
            generation,
            ctx,
        } => {
            let g = eng.state.gas(at);
            g.cache.update(block, OwnerHint { owner, generation });
            let backoff = match g.pending.get_mut(ctx) {
                Ok(p) => {
                    p.phase = OpPhase::Backoff;
                    // Exponential back-off (capped): doubles per attempt so
                    // a contended block cannot livelock its initiators.
                    let shift = p.attempts.saturating_sub(1).min(12);
                    Some(g.cfg.retry_backoff * (1u64 << shift))
                }
                Err(_) => None,
            };
            if let Some(backoff) = backoff {
                eng.schedule(backoff, move |eng| {
                    if eng.state.gas(at).pending.contains(ctx) {
                        issue(eng, at, ctx);
                    }
                });
            }
        }
        GasMsg::DirUpdate {
            block,
            owner,
            generation,
            reply_to,
        } => {
            let service = eng.state.gas(at).cfg.dir_lookup;
            let now = eng.now();
            let (_, finish) = eng.state.cpu(at).admit(now, service);
            {
                let l = eng.state.cluster().loc_mut(at);
                l.counters.cpu_busy += service;
                l.counters.dir_lookups += 1;
            }
            eng.schedule_at(finish, move |eng| {
                let g = eng.state.gas(at);
                if g.member.is_enabled() && g.dir.lookup_opt(block).is_none() {
                    // The record isn't homed here (any more / yet). If the
                    // view points elsewhere, forward the update along the
                    // serving chain; otherwise adopt the record — a commit
                    // racing a hand-off lands on the new home before the
                    // DirHandoff batch does.
                    let serving = g.member.resolve(block, Gva(block).home());
                    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
                    if serving != at {
                        crate::migrate::send_ctrl(
                            eng,
                            at,
                            serving,
                            ctrl,
                            GasMsg::DirUpdate {
                                block,
                                owner,
                                generation,
                                reply_to,
                            },
                        );
                        return;
                    }
                    eng.state
                        .gas(at)
                        .dir
                        .install(block, crate::OwnerRec { owner, generation });
                    crate::migrate::send_ctrl(
                        eng,
                        at,
                        reply_to,
                        ctrl,
                        GasMsg::DirUpdateAck { block },
                    );
                    return;
                }
                eng.state
                    .gas(at)
                    .dir
                    .update(block, crate::OwnerRec { owner, generation });
                let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
                crate::migrate::send_ctrl(eng, at, reply_to, ctrl, GasMsg::DirUpdateAck { block });
            });
        }
        GasMsg::DirUpdateAck { block } => crate::migrate::on_dir_update_ack(eng, at, block),
        GasMsg::CtrlBatch(msgs) => {
            // A control-ring doorbell delivered several control messages in
            // one wire message; unpack in post order so the batch behaves
            // exactly like the same messages sent back-to-back.
            for m in msgs {
                handle_msg(eng, from, at, m);
            }
        }
        GasMsg::MigRequest {
            block,
            dst,
            ctx,
            reply_to,
            hops,
        } => crate::migrate::on_mig_request(eng, at, block, dst, ctx, reply_to, hops),
        GasMsg::MigData {
            block,
            class,
            generation,
            data,
            amo_log,
            src,
            ctx,
            reply_to,
        } => crate::migrate::on_mig_data(
            eng, at, block, class, generation, data, amo_log, src, ctx, reply_to,
        ),
        GasMsg::MigAck { block } => crate::migrate::on_mig_ack(eng, at, block),
        GasMsg::MigDone { ctx, block } => {
            let g = eng.state.gas(at);
            g.stats.migrations_done += 1;
            if g.cfg.record_history {
                // Context for history reports: when this block last moved
                // (migration preserves contents, so it carries no value).
                let now = eng.now();
                let g = eng.state.gas(at);
                g.history.push(HistEvent {
                    kind: HistKind::Migrate,
                    block,
                    offset: 0,
                    len: 0,
                    value: 0,
                    issued: now,
                    done: Some(now),
                    ok: true,
                    loc: at,
                });
            }
            // Drain-evacuation completions carry the membership sentinel
            // handle and finish inside the plane — no user callback.
            if ctx == crate::membership::evac_ctx(block)
                && eng.state.gas(at).member.evac.remove(&block)
            {
                return;
            }
            S::gas_migrate_done(eng, at, ctx, block);
        }
        GasMsg::FreeRequest {
            block,
            ctx,
            reply_to,
            hops,
        } => crate::migrate::on_free_request(eng, at, block, ctx, reply_to, hops),
        GasMsg::DirUnregister {
            block,
            ctx,
            reply_to,
        } => crate::migrate::on_dir_unregister(eng, at, block, ctx, reply_to),
        GasMsg::FreeDone { ctx, block } => S::gas_free_done(eng, at, ctx, block),
        GasMsg::Member { update } => crate::membership::on_member_update(eng, at, update),
        GasMsg::DirHandoff { records, from } => {
            crate::membership::on_dir_handoff(eng, at, records, from)
        }
    }
    let _ = from;
}

/// Software-AGAS remote access at the (believed) owner: queue if the block
/// is mid-migration, otherwise charge the CPU and run the handler.
fn handle_sw_access<S: GasWorld>(eng: &mut Engine<S>, at: LocalityId, msg: GasMsg) {
    let (block, data_len) = match &msg {
        GasMsg::SwPut { block, data, .. } => (*block, data.len()),
        GasMsg::SwGet { block, len, .. } => (*block, *len as usize),
        GasMsg::SwAmo { block, amo, .. } => (*block, 8 * amo.touched_words()),
        _ => unreachable!(),
    };
    // Mid-migration: park the access; it is re-sent to the new owner on
    // MigAck (the initiator never notices).
    if let Some(ms) = eng.state.gas(at).moving.get_mut(&block) {
        ms.queued.push(msg);
        return;
    }
    let (service, per_byte) = {
        let g = eng.state.gas(at);
        (g.cfg.sw_handler, g.cfg.copy_per_byte_ps)
    };
    let service = service + copy_time(per_byte, data_len);
    {
        let g = eng.state.gas(at);
        *g.heat.entry(block).or_insert(0) += 1;
    }
    let now = eng.now();
    let (_, finish) = eng.state.cpu(at).admit(now, service);
    {
        let l = eng.state.cluster().loc_mut(at);
        l.counters.cpu_busy += service;
        l.counters.sw_handler_runs += 1;
    }
    eng.schedule_at(finish, move |eng| run_sw_access(eng, at, msg));
}

fn run_sw_access<S: GasWorld>(eng: &mut Engine<S>, at: LocalityId, msg: GasMsg) {
    let block = match &msg {
        GasMsg::SwPut { block, .. } | GasMsg::SwGet { block, .. } | GasMsg::SwAmo { block, .. } => {
            *block
        }
        _ => unreachable!(),
    };
    // Re-check residency at execution time: a migration may have started
    // while the handler sat in the CPU queue.
    if let Some(ms) = eng.state.gas(at).moving.get_mut(&block) {
        ms.queued.push(msg);
        return;
    }
    let entry = eng.state.gas(at).btt.lookup(block).copied();
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    match msg {
        GasMsg::SwPut {
            offset,
            data,
            ctx,
            reply_to,
            ..
        } => match entry {
            Some(e) => {
                if offset + data.len() as u64 > 1u64 << e.class {
                    // Out-of-bounds software put: reject it as a protocol
                    // violation rather than corrupting the arena.
                    eng.state.gas(at).stats.protocol_violations += 1;
                    return;
                }
                eng.state
                    .cluster()
                    .mem_mut(at)
                    .write(e.base + offset, &data)
                    .expect("BTT entry points outside arena");
                eng.state.gas(at).stats.sw_puts_handled += 1;
                send_user_classed(
                    eng,
                    at,
                    reply_to,
                    ctrl,
                    S::wrap_gas(GasMsg::SwPutAck { ctx }),
                    FaultClass::Completion,
                );
            }
            None => {
                send_user_classed(
                    eng,
                    at,
                    reply_to,
                    ctrl,
                    S::wrap_gas(GasMsg::SwRetry { ctx, block }),
                    FaultClass::Completion,
                );
            }
        },
        GasMsg::SwGet {
            offset,
            len,
            ctx,
            reply_to,
            ..
        } => match entry {
            Some(e) => {
                if offset + len as u64 > 1u64 << e.class {
                    eng.state.gas(at).stats.protocol_violations += 1;
                    return;
                }
                let data = eng
                    .state
                    .cluster()
                    .mem(at)
                    .read(e.base + offset, len as usize)
                    .expect("BTT entry points outside arena")
                    .to_vec();
                eng.state.gas(at).stats.sw_gets_handled += 1;
                send_user_classed(
                    eng,
                    at,
                    reply_to,
                    len,
                    S::wrap_gas(GasMsg::SwGetReply { ctx, data }),
                    FaultClass::Completion,
                );
            }
            None => {
                send_user_classed(
                    eng,
                    at,
                    reply_to,
                    ctrl,
                    S::wrap_gas(GasMsg::SwRetry { ctx, block }),
                    FaultClass::Completion,
                );
            }
        },
        GasMsg::SwAmo {
            offset,
            amo,
            key,
            ctx,
            reply_to,
            ..
        } => {
            // Resolve storage: the BTT under AGAS; under PGAS (where the
            // BTT is empty by design) the replicated placement map — the
            // home always owns, so no retry path is needed there.
            let resolved = match entry {
                Some(e) => Some((e.base, 1u64 << e.class)),
                None if eng.state.gas_mode() == GasMode::Pgas => eng
                    .state
                    .pgas()
                    .get(&block)
                    .copied()
                    .map(|base| (base, Gva(block).block_size())),
                None => None,
            };
            let Some((base, size)) = resolved else {
                send_user_classed(
                    eng,
                    at,
                    reply_to,
                    ctrl,
                    S::wrap_gas(GasMsg::SwRetry { ctx, block }),
                    FaultClass::Completion,
                );
                return;
            };
            if !amo.bounds_ok(offset, size) {
                eng.state.gas(at).stats.protocol_violations += 1;
                return;
            }
            // The same responder cache the NIC path uses: a retry that
            // degraded to the software path after its first attempt
            // executed at the NIC still deduplicates.
            let cached = eng.state.cluster().loc_mut(at).nic.amo.lookup(key).cloned();
            let result = match cached {
                Some(r) => {
                    eng.state.gas(at).stats.amo_replays += 1;
                    r
                }
                None => {
                    let r = {
                        let slice = eng
                            .state
                            .cluster()
                            .mem_mut(at)
                            .slice_mut(base, size as usize)
                            .expect("AMO storage outside arena");
                        netsim::amo::execute(&amo, slice, offset)
                    };
                    // Same policy as the NIC path: reads re-execute
                    // harmlessly and never consume replay-cache slots.
                    if amo.mutates() {
                        eng.state
                            .cluster()
                            .loc_mut(at)
                            .nic
                            .amo
                            .install(key, block, r.clone());
                    }
                    r
                }
            };
            eng.state.gas(at).stats.sw_amos_handled += 1;
            send_user_classed(
                eng,
                at,
                reply_to,
                ctrl,
                S::wrap_gas(GasMsg::SwAmoReply { ctx, result }),
                FaultClass::Completion,
            );
        }
        _ => unreachable!(),
    }
}

// ---------------------------------------------------------------- routing & pinning

/// Where a parcel targeting `gva` should go, as seen from `loc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// The block is resident here: execute locally against this physical
    /// base (block base, not offset-adjusted).
    Local {
        /// Physical base of the block.
        base: PhysAddr,
        /// Size class.
        class: u8,
    },
    /// Send/forward toward this locality.
    Forward(LocalityId),
}

/// Resolve the parcel route for `gva` at `loc`. Message-driven runtimes
/// *forward* parcels toward data rather than keeping initiator state: a
/// stale step costs an extra hop, never a lost parcel.
pub fn route<S: GasWorld>(world: &mut S, loc: LocalityId, gva: Gva) -> Route {
    let block = gva.block_key();
    let home = gva.home();
    match world.gas_mode() {
        GasMode::Pgas => {
            if home == loc {
                let base = *world
                    .pgas()
                    .get(&block)
                    .expect("route on unallocated block");
                Route::Local {
                    base,
                    class: gva.class(),
                }
            } else {
                Route::Forward(home)
            }
        }
        GasMode::AgasSoftware | GasMode::AgasNetwork => {
            let g = world.gas(loc);
            // Membership may have re-homed the block's directory record
            // (join slice, drain hand-off, crash takeover).
            let serving = g.member.resolve(block, home);
            if let Some(e) = g.btt.lookup(block) {
                match e.state {
                    crate::BlockState::Resident => Route::Local {
                        base: e.base,
                        class: e.class,
                    },
                    crate::BlockState::Moving => {
                        let dst = g.moving.get(&block).map(|m| m.dst).unwrap_or(serving);
                        Route::Forward(dst)
                    }
                }
            } else if serving == loc {
                // We are the authority: route to the directory's owner.
                match g.dir.lookup_opt(block) {
                    Some(rec) => Route::Forward(rec.owner),
                    // Record still in flight to us (hand-off racing the
                    // access): fall back to the encoded home, whose own
                    // view will re-forward as it catches up.
                    None => Route::Forward(home),
                }
            } else if let Some(h) = g.cache.lookup(block) {
                Route::Forward(h.owner)
            } else {
                Route::Forward(serving)
            }
        }
    }
}

/// Pin `gva`'s block for a local handler. Returns the physical base and
/// class, or `None` if the block is not executable here (caller re-routes).
pub fn pin<S: GasWorld>(world: &mut S, loc: LocalityId, gva: Gva) -> Option<(PhysAddr, u8)> {
    let block = gva.block_key();
    match world.gas_mode() {
        GasMode::Pgas => {
            if gva.home() == loc {
                Some((*world.pgas().get(&block)?, gva.class()))
            } else {
                None
            }
        }
        _ => world.gas(loc).btt.pin(block).map(|e| (e.base, e.class)),
    }
}

/// Release a pin taken with [`pin`]; may start a deferred migration.
pub fn unpin<S: GasWorld>(eng: &mut Engine<S>, loc: LocalityId, gva: Gva) {
    let block = gva.block_key();
    if eng.state.gas_mode() == GasMode::Pgas {
        return;
    }
    let pins = eng.state.gas(loc).btt.unpin(block);
    if pins == 0 {
        crate::migrate::retry_deferred(eng, loc, block);
    }
}
