//! Collective global allocation.
//!
//! Mirrors `hpx_gas_alloc_cyclic` and friends: the driver allocates a global
//! array of power-of-two blocks spread over the cluster by a
//! [`Distribution`]. Allocation is a boot-time collective — every locality
//! learns the block set synchronously, which is also when PGAS mode performs
//! its rkey/physical-address exchange (the [`PgasMap`]) and network-managed
//! AGAS installs the initial NIC translation entries.

use crate::dist::Distribution;
use crate::gva::Gva;
use crate::{GasMode, GasWorld};
use netsim::{Engine, PhysAddr, XlateEntry};
use std::collections::HashMap;

/// The replicated PGAS placement registry: block key → physical base at the
/// block's home. Models the symmetric-allocation/rkey-exchange knowledge
/// every PGAS initiator has. AGAS modes never read it.
pub type PgasMap = HashMap<u64, PhysAddr>;

/// A handle to a collectively allocated global array.
#[derive(Clone, Debug)]
pub struct GlobalArray {
    /// Size class of every block.
    pub class: u8,
    /// The distribution the array was created with.
    pub dist: Distribution,
    /// The blocks, in allocation (index) order.
    pub blocks: Vec<Gva>,
}

impl GlobalArray {
    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        1u64 << self.class
    }

    /// Number of blocks.
    pub fn len_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Total bytes across all blocks.
    pub fn total_bytes(&self) -> u64 {
        self.len_blocks() * self.block_size()
    }

    /// The `i`-th block's base address.
    pub fn block(&self, i: u64) -> Gva {
        self.blocks[i as usize]
    }

    /// The GVA of global byte `byte` (array-linear addressing).
    pub fn at_byte(&self, byte: u64) -> Gva {
        let bs = self.block_size();
        self.blocks[(byte / bs) as usize].with_offset(byte % bs)
    }

    /// Split the linear byte range `[start, start+len)` into per-block
    /// `(gva, len)` chunks — the unit a single memput/memget can address.
    pub fn chunks(&self, start: u64, len: u64) -> Vec<(Gva, u64)> {
        assert!(start + len <= self.total_bytes(), "range outside array");
        let bs = self.block_size();
        let mut out = Vec::new();
        let mut cur = start;
        let end = start + len;
        while cur < end {
            let in_block = bs - (cur % bs);
            let take = in_block.min(end - cur);
            out.push((self.at_byte(cur), take));
            cur += take;
        }
        out
    }
}

/// Collectively allocate `n_blocks` blocks of size class `class`,
/// distributed by `dist`. Blocks are zeroed, registered with their home
/// directories, and — depending on the active [`GasMode`] — either entered
/// into the replicated [`PgasMap`] or installed into the owners' NIC
/// translation tables.
pub fn alloc_array<S: GasWorld>(
    eng: &mut Engine<S>,
    n_blocks: u64,
    class: u8,
    dist: Distribution,
) -> GlobalArray {
    let nloc = eng.state.cluster_ref().len() as u32;
    let mode = eng.state.gas_mode();
    let mut blocks = Vec::with_capacity(n_blocks as usize);
    for i in 0..n_blocks {
        let home = dist.home(i, n_blocks, nloc);
        let seq = eng.state.gas(home).alloc_seq(class);
        let gva = Gva::new(home, class, seq, 0);
        let key = gva.block_key();
        let phys = eng
            .state
            .cluster()
            .mem_mut(home)
            .alloc_block(class)
            .expect("arena exhausted during global allocation");
        eng.state.gas(home).btt.insert(key, phys, class, 1);
        eng.state.gas(home).dir.register(key, home);
        match mode {
            GasMode::Pgas => {
                eng.state.pgas().insert(key, phys);
            }
            GasMode::AgasNetwork => {
                eng.state.cluster().install_xlate(
                    home,
                    key,
                    XlateEntry {
                        base: phys,
                        len: 1u64 << class,
                        generation: 1,
                    },
                );
            }
            GasMode::AgasSoftware => {}
        }
        blocks.push(gva);
    }
    GlobalArray {
        class,
        dist,
        blocks,
    }
}

/// Free a global array (driver-time; the cluster must be quiescent).
/// Releases arena storage, BTT/directory records, NIC entries, and PGAS
/// registry entries at whatever locality currently owns each block.
pub fn free_array<S: GasWorld>(eng: &mut Engine<S>, array: &GlobalArray) {
    for gva in &array.blocks {
        let key = gva.block_key();
        let home = gva.home();
        let rec = eng.state.gas(home).dir.lookup(key);
        let owner = rec.owner;
        let entry = eng
            .state
            .gas(owner)
            .btt
            .remove(key)
            .expect("free of a block its owner does not hold");
        eng.state
            .cluster()
            .mem_mut(owner)
            .free_block(entry.base, entry.class);
        eng.state.cluster().loc_mut(owner).nic.xlate.invalidate(key);
        eng.state.gas(home).dir.unregister(key);
        eng.state.pgas().remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array_of(class: u8, n: u64) -> GlobalArray {
        GlobalArray {
            class,
            dist: Distribution::Cyclic,
            blocks: (0..n)
                .map(|i| Gva::new((i % 4) as u32, class, i / 4, 0))
                .collect(),
        }
    }

    #[test]
    fn linear_addressing() {
        let a = array_of(10, 8); // 1 KiB blocks
        assert_eq!(a.block_size(), 1024);
        assert_eq!(a.total_bytes(), 8192);
        assert_eq!(a.at_byte(0), a.block(0));
        assert_eq!(a.at_byte(1023).offset(), 1023);
        assert_eq!(a.at_byte(1024).block_base(), a.block(1));
        assert_eq!(a.at_byte(5000).block_base(), a.block(4));
        assert_eq!(a.at_byte(5000).offset(), 5000 % 1024);
    }

    #[test]
    fn chunks_respect_block_boundaries() {
        let a = array_of(6, 4); // 64 B blocks
        let chunks = a.chunks(50, 100);
        // 50..64 (14 bytes in block 0), 64..128 (64 in block 1), 128..150 (22 in block 2)
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], (a.block(0).with_offset(50), 14));
        assert_eq!(chunks[1], (a.block(1), 64));
        assert_eq!(chunks[2], (a.block(2), 22));
        assert_eq!(chunks.iter().map(|&(_, l)| l).sum::<u64>(), 100);
    }

    #[test]
    fn chunks_within_one_block() {
        let a = array_of(6, 4);
        let chunks = a.chunks(10, 20);
        assert_eq!(chunks, vec![(a.block(0).with_offset(10), 20)]);
    }

    #[test]
    #[should_panic(expected = "outside array")]
    fn chunks_out_of_range_panics() {
        let a = array_of(6, 4);
        let _ = a.chunks(200, 100);
    }
}
