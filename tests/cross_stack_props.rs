//! Workspace-level property tests: random mixed schedules through the
//! complete stack.

use nmvgas::{Distribution, GasMode, Runtime};
use parcel_rt::ArgWriter;
use proptest::prelude::*;
use std::cell::Cell;
use std::rc::Rc;

#[derive(Debug, Clone)]
enum Cmd {
    Put { from: u8, block: u8, slot: u8 },
    Get { from: u8, block: u8 },
    Spawn { from: u8, block: u8, val: u8 },
    Migrate { block: u8, to: u8 },
}

fn cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        3 => (0u8..4, 0u8..8, 0u8..8).prop_map(|(from, block, slot)| Cmd::Put { from, block, slot }),
        2 => (0u8..4, 0u8..8).prop_map(|(from, block)| Cmd::Get { from, block }),
        2 => (0u8..4, 0u8..8, 1u8..=255).prop_map(|(from, block, val)| Cmd::Spawn { from, block, val }),
        1 => (0u8..8, 0u8..4).prop_map(|(block, to)| Cmd::Migrate { block, to }),
    ]
}

fn run_schedule(mode: GasMode, cmds: &[Cmd], seed: u64) -> (u64, u64, u64) {
    let mut b = Runtime::builder(4, mode);
    let hits = Rc::new(Cell::new(0u64));
    let h2 = hits.clone();
    let bump = b.register("bump", move |eng, ctx| {
        h2.set(h2.get() + 1);
        let mut r = parcel_rt::ArgReader::new(&ctx.args);
        let v = r.u64();
        let phys = ctx.target_phys();
        eng.state.cluster.mem_mut(ctx.loc).xor_u64(phys, v).unwrap();
        parcel_rt::reply(eng, &ctx, vec![]);
    });
    let mut rt = b.seed(seed).boot();
    let arr = rt.alloc(8, 12, Distribution::Cyclic);
    let completions = Rc::new(Cell::new(0u64));
    for c in cmds {
        match *c {
            Cmd::Put { from, block, slot } => {
                let done = completions.clone();
                rt.memput_cb(
                    from as u32,
                    arr.block(block as u64).with_offset(64 + slot as u64 * 8),
                    vec![slot; 8],
                    move |_, _| done.set(done.get() + 1),
                );
            }
            Cmd::Get { from, block } => {
                let done = completions.clone();
                rt.memget_cb(from as u32, arr.block(block as u64), 8, move |_, _| {
                    done.set(done.get() + 1)
                });
            }
            Cmd::Spawn { from, block, val } => {
                let done = completions.clone();
                let fut = rt.new_future(from as u32);
                rt.wait_lco(fut, move |_, _| done.set(done.get() + 1));
                rt.spawn(
                    from as u32,
                    arr.block(block as u64),
                    bump,
                    ArgWriter::new().u64(val as u64).finish(),
                    Some(fut),
                );
            }
            Cmd::Migrate { block, to } => {
                if mode.supports_migration() {
                    rt.migrate(0, arr.block(block as u64), to as u32);
                }
            }
        }
        rt.eng.run_steps(4);
    }
    rt.run();
    (completions.get(), hits.get(), rt.eng.trace_hash())
}

/// Triaged from `tests/cross_stack_props.proptest-regressions` (seed 52):
/// block 6 is migrated twice back-to-back — the second migration starts
/// while the first's directory update is still in flight — and a put plus a
/// spawn then chase the moving block through stale owner hints. The shrunk
/// schedule lost a completion before the deferred-migration queue handled
/// re-entrant moves; it is pinned here by name so the case survives even if
/// the regressions file is pruned.
#[test]
fn regression_seed52_double_migrate_with_chasing_put() {
    let cmds = [
        Cmd::Migrate { block: 6, to: 3 },
        Cmd::Get { from: 0, block: 0 },
        Cmd::Put {
            from: 1,
            block: 1,
            slot: 0,
        },
        Cmd::Migrate { block: 6, to: 2 },
        Cmd::Get { from: 2, block: 0 },
        Cmd::Put {
            from: 3,
            block: 3,
            slot: 5,
        },
        Cmd::Put {
            from: 2,
            block: 6,
            slot: 0,
        },
        Cmd::Spawn {
            from: 2,
            block: 0,
            val: 47,
        },
        Cmd::Spawn {
            from: 3,
            block: 5,
            val: 208,
        },
        Cmd::Get { from: 0, block: 1 },
        Cmd::Spawn {
            from: 3,
            block: 6,
            val: 43,
        },
    ];
    let expected_completions = 9; // everything except the two migrates
    let expected_hits = 3;
    for mode in GasMode::ALL {
        let (completions, hits, _) = run_schedule(mode, &cmds, 52);
        assert_eq!(completions, expected_completions, "{mode:?}");
        assert_eq!(hits, expected_hits, "{mode:?}");
    }
    // And the schedule must replay bit-identically.
    let a = run_schedule(GasMode::AgasNetwork, &cmds, 52);
    let b = run_schedule(GasMode::AgasNetwork, &cmds, 52);
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every async operation in a random mixed schedule completes, every
    /// spawned action runs exactly once, in every mode.
    #[test]
    fn random_schedules_drain_completely(
        cmds in proptest::collection::vec(cmd(), 1..50),
        seed in 0u64..500,
    ) {
        let expected_completions = cmds
            .iter()
            .filter(|c| !matches!(c, Cmd::Migrate { .. }))
            .count() as u64;
        let expected_hits = cmds.iter().filter(|c| matches!(c, Cmd::Spawn { .. })).count() as u64;
        for mode in GasMode::ALL {
            let (completions, hits, _) = run_schedule(mode, &cmds, seed);
            prop_assert_eq!(completions, expected_completions, "{:?}", mode);
            prop_assert_eq!(hits, expected_hits, "{:?}", mode);
        }
    }

    /// The full stack is deterministic under random mixed schedules.
    #[test]
    fn random_schedules_are_deterministic(
        cmds in proptest::collection::vec(cmd(), 1..30),
        seed in 0u64..500,
    ) {
        let a = run_schedule(GasMode::AgasNetwork, &cmds, seed);
        let b = run_schedule(GasMode::AgasNetwork, &cmds, seed);
        prop_assert_eq!(a, b);
    }
}
