//! Chaos matrix: the full stack under deterministic network fault
//! injection (DESIGN.md §3.4).
//!
//! Every cell runs the shared [`workloads::chaos`] driver — slot-idempotent
//! puts, auditing gets, optional migration churn — with a seeded
//! [`FaultPlan`] installed, then demands the strongest verdict the stack
//! can offer: the committed history checker finds **zero violations**, and
//! every issued operation is accounted for (completed or failed cleanly;
//! nothing silently lost). High fault rates must additionally prove the
//! recovery machinery actually fired, so a cell that quietly stops
//! injecting can't pass by doing nothing.

use netsim::{FaultPlan, LinkFlap, Partition, Time};
use nmvgas::GasMode;
use workloads::chaos::{corrupt_mix, drop_mix, run_chaos, ChaosConfig, ChaosReport};

fn cell(mode: GasMode, plan: FaultPlan, churn: u64, seed: u64) -> ChaosReport {
    run_chaos(&ChaosConfig {
        mode,
        plan,
        seed,
        rounds: 14,
        churn,
        ..ChaosConfig::default()
    })
}

fn demand_pass(r: &ChaosReport, label: &str) {
    assert!(
        r.violations.is_empty(),
        "{label}: history checker flagged {} violation(s): {:#?}",
        r.violations.len(),
        r.violations
    );
    assert!(
        r.accounted(),
        "{label}: {} issued but {} acked + {} failed",
        r.issued(),
        r.acked(),
        r.op_failures
    );
    assert_eq!(r.data_mismatches, 0, "{label}: driver saw corrupt get data");
}

#[test]
fn lossless_plan_passes_with_and_without_churn() {
    for mode in GasMode::ALL {
        for churn in [0, 3] {
            let r = cell(mode, FaultPlan::lossless(9), churn, 5);
            demand_pass(&r, &format!("{mode:?}/churn={churn}"));
            assert_eq!(r.op_failures, 0);
            assert_eq!(r.faults.total_drops(), 0);
        }
    }
}

#[test]
fn one_percent_drop_mix_passes_in_every_mode() {
    for mode in GasMode::ALL {
        for churn in [0, 3] {
            let r = cell(mode, drop_mix(21, 0.01), churn, 13);
            demand_pass(&r, &format!("{mode:?}/churn={churn}/drop=1%"));
        }
    }
}

#[test]
fn five_percent_drop_mix_passes_and_exercises_recovery() {
    for mode in GasMode::ALL {
        for churn in [0, 3] {
            let label = format!("{mode:?}/churn={churn}/drop=5%");
            let r = cell(mode, drop_mix(33, 0.05), churn, 29);
            demand_pass(&r, &label);
            assert!(r.faults.dropped > 0, "{label}: plan injected no drops");
            assert!(
                r.gas.deadline_retries > 0,
                "{label}: lost messages never hit the sweep-retry path"
            );
        }
    }
}

#[test]
fn corruption_mix_degrades_to_recoverable_drops() {
    for mode in GasMode::ALL {
        let label = format!("{mode:?}/corrupt=4%");
        let r = cell(mode, corrupt_mix(41, 0.04), 3, 37);
        demand_pass(&r, &label);
        assert!(
            r.faults.corrupt_drops > 0,
            "{label}: no request-class corruption was injected"
        );
    }
}

#[test]
fn corrupted_rendezvous_parcels_are_rejected_by_checksum() {
    let r = run_chaos(&ChaosConfig {
        mode: GasMode::AgasNetwork,
        plan: corrupt_mix(55, 0.2),
        seed: 43,
        rounds: 20,
        churn: 0,
        spawns: true,
        ..ChaosConfig::default()
    });
    demand_pass(&r, "AgasNetwork/corrupt=20%/spawns");
    assert!(
        r.corrupt_parcels > 0,
        "no parcel failed its wire checksum: {r:?}"
    );
    // A corrupted parcel is discarded, never delivered as garbage — so
    // some continuations simply never fire.
    assert!(r.spawn_replies < r.spawns_issued);
}

#[test]
fn link_flap_window_recovers_after_heal() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut plan = drop_mix(61, 0.01);
        plan.flaps = vec![LinkFlap {
            src: 0,
            dst: 1,
            from: Time::from_us(5),
            to: Time::from_us(150),
        }];
        let label = format!("{mode:?}/flap(0->1)");
        let r = cell(mode, plan, 3, 47);
        demand_pass(&r, &label);
        assert!(
            r.faults.flap_drops > 0,
            "{label}: flap window saw no traffic"
        );
    }
}

#[test]
fn partition_heals_and_everything_is_accounted() {
    let mut plan = FaultPlan::lossless(71);
    plan.partitions = vec![Partition {
        from: Time::from_us(10),
        to: Time::from_us(160),
        group_a: vec![0, 1],
    }];
    for mode in GasMode::ALL {
        let label = format!("{mode:?}/partition");
        let r = cell(mode, plan.clone(), 0, 53);
        demand_pass(&r, &label);
        assert!(
            r.faults.partition_drops > 0,
            "{label}: the cut saw no traffic"
        );
        assert!(
            r.gas.deadline_retries > 0,
            "{label}: partitioned ops never retried"
        );
    }
}

#[test]
fn amo_traffic_survives_the_fault_matrix_in_every_mode() {
    // NIC-executed fetch-adds ride the chaos driver under both fault
    // mixes, across three seeds and every mode. The history checker's
    // word-level rules (phantom reads, unique consumption) make a lost or
    // double-applied AMO a hard failure, so a clean pass here is the
    // exactly-once proof for the request *and* completion classes.
    let mut amo_replays = 0u64;
    for (plan_seed, seed) in [(91u64, 67u64), (93, 71), (95, 73)] {
        for mode in GasMode::ALL {
            for (tag, plan) in [
                ("drop=5%", drop_mix(plan_seed, 0.05)),
                ("corrupt=4%", corrupt_mix(plan_seed, 0.04)),
            ] {
                let label = format!("{mode:?}/{tag}/seed={seed}");
                let r = run_chaos(&ChaosConfig {
                    mode,
                    plan,
                    seed,
                    rounds: 14,
                    churn: 3,
                    amos: true,
                    ..ChaosConfig::default()
                });
                demand_pass(&r, &label);
                assert!(r.amos_issued > 0, "{label}: no AMO traffic ran");
                assert!(r.faults.total_drops() > 0, "{label}: plan injected nothing");
                assert!(
                    r.gas.deadline_retries > 0,
                    "{label}: lost AMOs never hit the sweep-retry path"
                );
                amo_replays += r.gas.amo_replays + r.net.amo_replays;
            }
        }
    }
    // Somewhere in the matrix a duplicated or re-issued AMO must have hit
    // the responder replay cache instead of re-executing.
    assert!(amo_replays > 0, "replay cache never deduplicated anything");
}

#[test]
fn amo_chaos_cells_replay_bit_identically() {
    for seed in [67u64, 71, 73] {
        let cfg = ChaosConfig {
            mode: GasMode::AgasNetwork,
            plan: drop_mix(seed, 0.05),
            seed,
            rounds: 14,
            churn: 3,
            amos: true,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a.trace_hash, b.trace_hash, "seed {seed}");
        assert_eq!(a.end, b.end, "seed {seed}");
        assert_eq!(a.events, b.events, "seed {seed}");
        assert_eq!(a.amo_acks, b.amo_acks, "seed {seed}");
    }
}

/// One membership chaos cell: the full join → drain → crash schedule under
/// a seeded drop mix, with puts/gets/AMOs and migration churn flowing
/// throughout.
fn membership_cell(mode: GasMode, seed: u64) -> ChaosConfig {
    ChaosConfig {
        mode,
        plan: drop_mix(seed ^ 0xA5, 0.02),
        seed,
        rounds: 24,
        churn: 4,
        amos: true,
        membership: true,
        ..ChaosConfig::default()
    }
}

#[test]
fn membership_schedule_survives_chaos_in_every_mode() {
    // Join, drain, and crash under sustained faulted traffic, three seeds
    // per mode. Zero history violations, full accounting (no op hangs past
    // its deadline — a hung op would surface as issued > acked + failed),
    // and the crash must actually recover home-directory blocks.
    for seed in [67u64, 71, 73] {
        for mode in GasMode::ALL {
            let label = format!("{mode:?}/membership/seed={seed}");
            let r = run_chaos(&membership_cell(mode, seed));
            demand_pass(&r, &label);
            assert!(
                r.gas.blocks_rehomed > 0,
                "{label}: the join slice re-homed nothing"
            );
            if mode.supports_migration() {
                assert!(
                    r.gas.blocks_recovered > 0,
                    "{label}: the crash recovered no blocks: {:?}",
                    r.gas
                );
                assert!(
                    r.migration_acks > 0,
                    "{label}: no migration completed around the drain"
                );
            }
        }
    }
}

#[test]
fn membership_cells_replay_bit_identically() {
    for seed in [67u64, 71, 73] {
        for mode in GasMode::ALL {
            let cfg = membership_cell(mode, seed);
            let a = run_chaos(&cfg);
            let b = run_chaos(&cfg);
            assert_eq!(a.trace_hash, b.trace_hash, "{mode:?} seed {seed}");
            assert_eq!(a.end, b.end, "{mode:?} seed {seed}");
            assert_eq!(a.events, b.events, "{mode:?} seed {seed}");
            assert_eq!(a.acked(), b.acked(), "{mode:?} seed {seed}");
            assert_eq!(
                a.gas.blocks_recovered, b.gas.blocks_recovered,
                "{mode:?} seed {seed}"
            );
        }
    }
}

#[test]
fn chaos_cells_replay_bit_identically() {
    let cfg = ChaosConfig {
        mode: GasMode::AgasNetwork,
        plan: drop_mix(81, 0.05),
        seed: 59,
        rounds: 14,
        churn: 3,
        ..ChaosConfig::default()
    };
    let a = run_chaos(&cfg);
    let b = run_chaos(&cfg);
    assert_eq!(a.trace_hash, b.trace_hash);
    assert_eq!(a.end, b.end);
    assert_eq!(a.events, b.events);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.acked(), b.acked());
    assert_eq!(a.op_failures, b.op_failures);
}
