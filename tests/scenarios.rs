//! Feature-interaction scenarios: each test combines several subsystems
//! that are individually tested elsewhere (transport × jitter × migration ×
//! coalescing × balancer × fabric knobs) and asserts end-to-end invariants.

use nmvgas::workloads::{bfs, gups, skew, transpose};
use nmvgas::{Distribution, GasMode, NetConfig, Runtime, Time};
use parcel_rt::{BalancerConfig, RingConfig, RtConfig, Transport};
use std::cell::RefCell;
use std::rc::Rc;

fn rtcfg(transport: Transport, coalesce: bool) -> RtConfig {
    RtConfig {
        transport,
        ring: coalesce.then(RingConfig::default),
        ..RtConfig::default()
    }
}

#[test]
fn gups_actions_isir_jitter_migration() {
    // Two-sided transport + reordering fabric + table blocks migrating
    // mid-run: the XOR checksum must still be exact.
    let cfg = gups::GupsConfig {
        cells_per_loc: 512,
        updates_per_loc: 300,
        window: 8,
        use_actions: true,
        ..gups::GupsConfig::default()
    };
    let expect = gups::expected_checksum(&cfg, 4);
    let net = NetConfig {
        jitter_ns: 600,
        ..NetConfig::ib_fdr()
    };
    let mut b = Runtime::builder(4, GasMode::AgasNetwork);
    gups::register_actions(&mut b);
    let mut rt = b.net(net).rt_config(rtcfg(Transport::Isir, false)).boot();
    let table = gups::alloc_table(&mut rt, &cfg);
    for (i, gva) in table.blocks.iter().enumerate() {
        rt.migrate(0, *gva, ((i as u32) * 3 + 1) % 4);
    }
    gups::run(&mut rt, &cfg, &table);
    assert_eq!(gups::table_checksum(&rt, &table), expect);
    rt.assert_quiescent();
}

#[test]
fn skew_with_balancer_service_and_coalescing() {
    // The in-runtime balancer (NIC telemetry) + parcel coalescing active at
    // once; reads drain, owners spread, nothing leaks.
    let cfg = skew::SkewConfig {
        blocks: 32,
        read_bytes: 2048,
        ops_per_loc: 600,
        window: 12,
        theta: 1.1,
        rebalance_every: 0, // the service does the moving
        ..skew::SkewConfig::default()
    };
    let mut rt = Runtime::builder(6, GasMode::AgasNetwork)
        .rt_config(rtcfg(Transport::Pwc, true))
        .boot();
    let data = skew::alloc_blocks(&mut rt, &cfg);
    rt.start_balancer(BalancerConfig {
        period: Time::from_us(150),
        ..BalancerConfig::default()
    });
    let res = skew::run(&mut rt, &cfg, &data);
    assert_eq!(res.ops, 3600);
    assert!(rt.eng.state.balancer_stats.migrations > 0);
    agas::check::assert_consistent(&rt.eng.state, &data.blocks);
    rt.assert_quiescent();
}

#[test]
fn transpose_on_oversubscribed_jittery_fabric() {
    let net = NetConfig {
        oversubscription: 4,
        jitter_ns: 300,
        ..NetConfig::ib_fdr()
    };
    let cfg = transpose::TransposeConfig {
        block_class: 12,
        rounds: 2,
    };
    let mut rt = Runtime::builder(6, GasMode::AgasNetwork).net(net).boot();
    let arrays = transpose::setup(&mut rt, &cfg);
    let res = transpose::run(&mut rt, &cfg, &arrays);
    transpose::verify(&rt, &cfg, &arrays);
    assert!(res.aggregate_gbps > 0.0);
}

#[test]
fn bfs_on_starved_nic_table() {
    // A 4-entry NIC table under a graph traversal: constant eviction
    // pressure on the label blocks, same distances.
    let net = NetConfig {
        xlate_capacity: 4,
        ..NetConfig::ib_fdr()
    };
    let cfg = bfs::BfsConfig {
        vertices: 512,
        chords: 2,
        block_class: 10,
        root: 0,
        seed: 44,
    };
    let slot = Rc::new(RefCell::new(None));
    let mut b = Runtime::builder(4, GasMode::AgasNetwork);
    bfs::register_actions(&mut b, slot.clone());
    let mut rt = b.net(net).boot();
    bfs::install(&mut rt, &cfg, &slot);
    bfs::run(&mut rt, &cfg, &slot);
    let got = bfs::read_labels(&rt, &slot);
    let expect = slot.borrow().as_ref().unwrap().graph.bfs_oracle(cfg.root);
    assert_eq!(got, expect);
}

#[test]
fn free_and_realloc_under_live_traffic() {
    // Hammer array A, free array B concurrently, allocate C, hammer C:
    // no cross-talk, no leaks.
    let mut rt = Runtime::builder(4, GasMode::AgasNetwork).boot();
    let a = rt.alloc(8, 12, Distribution::Cyclic);
    let b = rt.alloc(8, 12, Distribution::Cyclic);
    for i in 0..40u64 {
        rt.memput(
            (i % 4) as u32,
            a.block(i % 8).with_offset((i / 8) * 32),
            vec![(i + 1) as u8; 32],
        );
    }
    for gva in &b.blocks {
        rt.free_block_cb(0, *gva, |_, _| {});
    }
    rt.run();
    let c = rt.alloc(8, 12, Distribution::Cyclic);
    for i in 0..40u64 {
        rt.memput(
            ((i + 2) % 4) as u32,
            c.block(i % 8).with_offset((i / 8) * 32),
            vec![(i + 101) as u8; 32],
        );
    }
    rt.run();
    rt.assert_quiescent();
    for i in 0..40u64 {
        let block_a = rt.read_block(a.block(i % 8));
        let off = ((i / 8) * 32) as usize;
        assert_eq!(&block_a[off..off + 32], &vec![(i + 1) as u8; 32][..]);
        let block_c = rt.read_block(c.block(i % 8));
        assert_eq!(&block_c[off..off + 32], &vec![(i + 101) as u8; 32][..]);
    }
    agas::check::assert_consistent(&rt.eng.state, &a.blocks);
    agas::check::assert_consistent(&rt.eng.state, &c.blocks);
}

#[test]
fn explicit_distribution_end_to_end() {
    // User-chosen placement: everything on localities {1, 3}; ops and
    // migration still behave.
    let dist = Distribution::Explicit(Rc::new(vec![1, 3]));
    let mut rt = Runtime::builder(4, GasMode::AgasSoftware).boot();
    let arr = rt.alloc(6, 12, dist);
    assert_eq!(arr.block(0).home(), 1);
    assert_eq!(arr.block(1).home(), 3);
    for i in 0..6u64 {
        rt.memput(0, arr.block(i), vec![i as u8 + 1; 16]);
    }
    rt.run();
    rt.migrate(0, arr.block(0), 2);
    rt.run();
    for i in 0..6u64 {
        let got = rt.read_block(arr.block(i));
        assert_eq!(&got[..16], &vec![i as u8 + 1; 16][..]);
    }
    agas::check::assert_consistent(&rt.eng.state, &arr.blocks);
}

#[test]
fn multiport_flood_with_coalescing() {
    // 4-port NICs + coalesced parcel flood: everything lands, counters add
    // up, and the batch count reflects the aggregation.
    let net = NetConfig {
        nic_ports: 4,
        ..NetConfig::ethernet_10g()
    };
    let mut b = Runtime::builder(4, GasMode::AgasNetwork);
    let hits = Rc::new(std::cell::Cell::new(0u32));
    let h = hits.clone();
    let sink = b.register("sink", move |_, _| h.set(h.get() + 1));
    let mut rt = b.net(net).rt_config(rtcfg(Transport::Pwc, true)).boot();
    let arr = rt.alloc(8, 12, Distribution::Cyclic);
    for i in 0..800u64 {
        rt.spawn(
            (i % 4) as u32,
            arr.block((i * 3 + 1) % 8),
            sink,
            vec![0u8; 16],
            None,
        );
    }
    rt.run();
    rt.assert_quiescent();
    assert_eq!(hits.get(), 800);
    assert!(rt.eng.state.total_rt_stats().batches_sent > 0);
}

#[test]
fn cray_fabric_full_stack() {
    // The Gemini-class preset through GUPS + migration + verification.
    let cfg = gups::GupsConfig {
        cells_per_loc: 512,
        updates_per_loc: 256,
        window: 8,
        use_actions: true,
        ..gups::GupsConfig::default()
    };
    let expect = gups::expected_checksum(&cfg, 4);
    let mut b = Runtime::builder(4, GasMode::AgasNetwork);
    gups::register_actions(&mut b);
    let mut rt = b.net(NetConfig::cray_gemini()).boot();
    let table = gups::alloc_table(&mut rt, &cfg);
    rt.migrate(0, table.block(0), 3);
    gups::run(&mut rt, &cfg, &table);
    assert_eq!(gups::table_checksum(&rt, &table), expect);
}

#[test]
fn tracing_captures_a_mixed_scenario() {
    let mut rt = Runtime::builder(3, GasMode::AgasNetwork).boot();
    let arr = rt.alloc(3, 12, Distribution::Cyclic);
    rt.eng.state.cluster.tracer.enable(256);
    rt.memput(0, arr.block(1), vec![1u8; 64]);
    rt.migrate(0, arr.block(1), 2);
    rt.run();
    rt.memput(0, arr.block(1), vec![2u8; 64]);
    rt.run();
    let text = rt.eng.state.cluster.tracer.render();
    assert!(text.contains("put"), "{text}");
    assert!(text.contains("xlate HIT"), "{text}");
    // The stale second put rode the tombstone or bounced; either trace
    // artifact is acceptable evidence the migration window was exercised.
    assert!(
        text.contains("FWD") || text.contains("MISS") || text.contains("nack"),
        "{text}"
    );
}
