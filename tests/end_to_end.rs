//! Workspace-level integration tests: the full stack (netsim → photon →
//! agas → parcel-rt → workloads) exercised end to end, across GAS modes.

use nmvgas::workloads::{chase, gups, skew, stencil};
use nmvgas::{ArgWriter, Distribution, GasMode, NetConfig, Runtime, Time};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Full GUPS (action variant) under every mode produces the same checksum —
/// the cross-stack correctness anchor.
#[test]
fn gups_checksum_identical_across_modes_and_fabrics() {
    let cfg = gups::GupsConfig {
        cells_per_loc: 512,
        updates_per_loc: 300,
        window: 8,
        use_actions: true,
        ..gups::GupsConfig::default()
    };
    let expect = gups::expected_checksum(&cfg, 5);
    for net in [NetConfig::ib_fdr(), NetConfig::ethernet_10g()] {
        for mode in GasMode::ALL {
            let mut b = Runtime::builder(5, mode).net(net);
            gups::register_actions(&mut b);
            let mut rt = b.boot();
            let table = gups::alloc_table(&mut rt, &cfg);
            gups::run(&mut rt, &cfg, &table);
            assert_eq!(gups::table_checksum(&rt, &table), expect, "{mode:?}");
        }
    }
}

/// A mixed workload — GUPS traffic, stencil iterations, and migrations all
/// at once — drains to quiescence with nothing lost.
#[test]
fn mixed_workload_quiesces_consistently() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut b = Runtime::builder(4, mode);
        gups::register_actions(&mut b);
        stencil::register_actions(&mut b);
        let mut rt = b.boot();

        let gcfg = gups::GupsConfig {
            cells_per_loc: 256,
            updates_per_loc: 200,
            window: 8,
            use_actions: true,
            ..gups::GupsConfig::default()
        };
        let table = gups::alloc_table(&mut rt, &gcfg);
        // Kick off migrations of table blocks while GUPS runs.
        for (i, gva) in table.blocks.iter().enumerate() {
            rt.migrate(0, *gva, ((i as u32) * 7 + 1) % 4);
        }
        let res = gups::run(&mut rt, &gcfg, &table);
        assert_eq!(res.updates, 800, "{mode:?}");
        assert_eq!(
            gups::table_checksum(&rt, &table),
            gups::expected_checksum(&gcfg, 4),
            "{mode:?}: migration during GUPS corrupted the table"
        );

        // Now a stencil on the same booted runtime.
        let scfg = stencil::StencilConfig {
            px: 2,
            py: 2,
            tile: 8,
            iters: 2,
            flop_time: Time::from_us(2),
        };
        let tiles = stencil::alloc_tiles(&mut rt, &scfg);
        let sres = stencil::run(&mut rt, &scfg, &tiles);
        assert_eq!(sres.iters, 2, "{mode:?}");

        // Nothing left pending anywhere.
        for l in 0..4 {
            assert_eq!(rt.eng.state.gas[l].outstanding_ops(), 0, "{mode:?}");
            assert_eq!(rt.eng.state.eps[l].outstanding_ops(), 0, "{mode:?}");
        }
    }
}

/// E10's counter structure holds end-to-end: one remote memput has the
/// documented per-mode protocol footprint.
#[test]
fn protocol_footprint_per_memput() {
    let footprint = |mode| {
        let mut rt = Runtime::builder(2, mode).boot();
        let arr = rt.alloc(2, 12, Distribution::Cyclic);
        let before = rt.counters();
        rt.memput(0, arr.block(1), vec![1u8; 256]);
        rt.run();
        let after = rt.counters();
        (
            after.rdma_puts - before.rdma_puts,
            after.msgs_sent - before.msgs_sent,
            after.sw_handler_runs - before.sw_handler_runs,
            after.xlate_hits - before.xlate_hits,
        )
    };
    assert_eq!(footprint(GasMode::Pgas), (1, 0, 0, 0));
    assert_eq!(footprint(GasMode::AgasNetwork), (1, 0, 0, 1));
    let (rdma, msgs, handlers, xlate) = footprint(GasMode::AgasSoftware);
    assert_eq!(rdma, 0);
    assert_eq!(handlers, 1);
    assert_eq!(xlate, 0);
    assert!(msgs >= 2, "request + ack, got {msgs}");
}

/// The pointer chase agrees with its oracle under every mode and both
/// traversal strategies, even with the NIC table under capacity pressure.
#[test]
fn chase_correct_under_table_pressure() {
    let cfg = chase::ChaseConfig {
        cells: 256,
        hops: 60,
        block_class: 9,
        seed: 99,
    };
    let net = NetConfig {
        xlate_capacity: 4,
        ..NetConfig::ib_fdr()
    };
    for mode in GasMode::ALL {
        let mut rt = Runtime::builder(4, mode).net(net).boot();
        let ring = chase::build_ring(&mut rt, &cfg);
        let expect = chase::expected_final(&rt, &ring, &cfg);
        let res = chase::run_memget(&mut rt, &cfg, &ring);
        assert_eq!(res.final_cell, expect, "{mode:?}");
    }
}

/// Skew + rebalancing leaves the GAS consistent and all reads served.
#[test]
fn skew_rebalancing_end_to_end() {
    let cfg = skew::SkewConfig {
        blocks: 24,
        block_class: 12,
        read_bytes: 512,
        ops_per_loc: 400,
        window: 8,
        theta: 1.0,
        rebalance_every: 150,
        moves_per_round: 3,
        seed: 11,
    };
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut rt = Runtime::builder(6, mode).boot();
        let data = skew::alloc_blocks(&mut rt, &cfg);
        let res = skew::run(&mut rt, &cfg, &data);
        assert_eq!(res.ops, 2400, "{mode:?}");
        assert!(res.migrations > 0, "{mode:?}");
        // Every block still has exactly one owner and a consistent home.
        for gva in &data.blocks {
            let owners: Vec<u32> = (0..6)
                .filter(|&l| {
                    rt.eng.state.gas[l as usize]
                        .btt
                        .is_resident(gva.block_key())
                })
                .collect();
            assert_eq!(owners.len(), 1, "{mode:?} {gva:?}");
            let home = gva.home() as usize;
            let rec = rt.eng.state.gas[home].dir.peek(gva.block_key()).unwrap();
            assert_eq!(rec.owner, owners[0], "{mode:?} {gva:?}");
        }
    }
}

/// Collectives + LCOs + user actions from the facade crate's re-exports.
#[test]
fn facade_broadcast_and_reduce() {
    let mut b = Runtime::builder(7, GasMode::AgasNetwork);
    let rank_sq = b.register("rank_sq", |eng, ctx| {
        let v = (ctx.loc as u64) * (ctx.loc as u64);
        parcel_rt::reply(eng, &ctx, v.to_le_bytes().to_vec());
    });
    let mut rt = b.boot();
    let total = rt.new_reduce(0, 7, nmvgas::ReduceOp::Sum);
    rt.broadcast(0, rank_sq, ArgWriter::new().finish(), Some(total));
    let result = Rc::new(Cell::new(0u64));
    let r2 = result.clone();
    rt.wait_lco(total, move |_, v| {
        r2.set(u64::from_le_bytes(v.try_into().unwrap()));
    });
    rt.run();
    assert_eq!(result.get(), (0..7u64).map(|x| x * x).sum());
}

/// Latency ordering (the paper's headline) holds through the whole stack
/// on the realistic fabric: PGAS ≈ AGAS-NET ≪ AGAS-SW for small remote ops.
#[test]
fn headline_latency_ordering_end_to_end() {
    let lat = |mode| {
        let mut rt = Runtime::builder(2, mode).boot();
        let arr = rt.alloc(2, 12, Distribution::Cyclic);
        let t = Rc::new(RefCell::new(Time::ZERO));
        let t2 = t.clone();
        let t0 = rt.now();
        rt.memput_cb(0, arr.block(1), vec![1u8; 8], move |eng, _| {
            *t2.borrow_mut() = eng.now();
        });
        rt.run();
        let done = *t.borrow();
        done - t0
    };
    let pgas = lat(GasMode::Pgas);
    let net = lat(GasMode::AgasNetwork);
    let sw = lat(GasMode::AgasSoftware);
    assert!(net >= pgas);
    assert!(
        net - pgas <= Time::from_ns(100),
        "NIC adder too large: {}",
        net - pgas
    );
    assert!(
        sw >= net + Time::from_ns(400),
        "software path not visibly slower: sw={sw} net={net}"
    );
}

/// Booting, freeing, and re-allocating repeatedly neither leaks arena
/// memory nor confuses the directory.
#[test]
fn alloc_free_cycles_are_clean() {
    let mut rt = Runtime::builder(3, GasMode::AgasNetwork).boot();
    let baseline: u64 = (0..3)
        .map(|l| rt.eng.state.cluster.mem(l).live_blocks())
        .sum();
    for round in 0..5 {
        let arr = rt.alloc(9, 10, Distribution::Cyclic);
        rt.memput(0, arr.block(4), vec![round as u8; 16]);
        rt.run();
        agas::free_array(&mut rt.eng, &arr);
        let live: u64 = (0..3)
            .map(|l| rt.eng.state.cluster.mem(l).live_blocks())
            .sum();
        assert_eq!(live, baseline, "round {round} leaked blocks");
    }
}
