//! Quickstart: boot a simulated cluster, allocate a global array, touch it
//! remotely, run an action at the data, and migrate a block — under the
//! network-managed AGAS.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nmvgas::{ArgReader, ArgWriter, Distribution, GasMode, Runtime};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // 1. Configure an 8-locality cluster under the paper's contribution:
    //    AGAS with NIC-managed translation. Actions must be registered
    //    before boot (SPMD-style, identical on every locality).
    let mut builder = Runtime::builder(8, GasMode::AgasNetwork);
    let scale = builder.register("scale", |eng, ctx| {
        // Multiply the first u64 of the target block by the argument —
        // executed wherever the block lives, with the block pinned.
        let mut args = ArgReader::new(&ctx.args);
        let factor = args.u64();
        let phys = ctx.target_phys();
        let mem = eng.state.cluster.mem_mut(ctx.loc);
        let cur = u64::from_le_bytes(mem.read(phys, 8).unwrap().try_into().unwrap());
        mem.write(phys, &(cur * factor).to_le_bytes()).unwrap();
        parcel_rt::reply(eng, &ctx, (cur * factor).to_le_bytes().to_vec());
    });
    let mut rt = builder.boot();

    // 2. Collectively allocate 16 blocks of 4 KiB, cyclically distributed.
    let array = rt.alloc(16, 12, Distribution::Cyclic);
    println!(
        "allocated {} blocks × {} B (block 5 lives at locality {})",
        array.len_blocks(),
        array.block_size(),
        array.block(5).home()
    );

    // 3. One-sided write from locality 0 into block 5 (which lives at
    //    locality 5): the target NIC translates the virtual address.
    rt.memput(0, array.block(5), 7u64.to_le_bytes().to_vec());
    rt.run();

    // 4. Ship work *to the data*: a parcel runs `scale` at block 5's owner
    //    and its reply lands in a future LCO.
    let fut = rt.new_future(0);
    rt.spawn(
        0,
        array.block(5),
        scale,
        ArgWriter::new().u64(6).finish(),
        Some(fut),
    );
    let result = Rc::new(RefCell::new(0u64));
    let r2 = result.clone();
    rt.wait_lco(fut, move |_, v| {
        *r2.borrow_mut() = u64::from_le_bytes(v.try_into().unwrap());
    });
    rt.run();
    println!("scale action returned {}", result.borrow()); // 42

    // 5. Migrate block 5 to locality 2 — the NIC tables update, the home
    //    directory commits, and the same addresses keep working.
    rt.migrate(0, array.block(5), 2);
    rt.run();
    let got = Rc::new(RefCell::new(Vec::new()));
    let g2 = got.clone();
    rt.memget_cb(7, array.block(5), 8, move |_, data| *g2.borrow_mut() = data);
    rt.run();
    println!(
        "after migration, block 5 reads {} (virtual time elapsed: {})",
        u64::from_le_bytes(got.borrow().as_slice().try_into().unwrap()),
        rt.now()
    );

    // 6. Every NIC/protocol event was counted:
    let c = rt.counters();
    println!(
        "cluster totals: {} RDMA puts, {} RDMA gets, {} NIC translations, \
         {} messages, {} migrations",
        c.rdma_puts, c.rdma_gets, c.xlate_hits, c.msgs_sent, c.migrations_in
    );
    assert_eq!(
        u64::from_le_bytes(got.borrow().as_slice().try_into().unwrap()),
        42
    );
    println!("quickstart OK");
}
