//! Adaptive load rebalancing under skewed access — what block mobility
//! (the A in AGAS) buys, and what NIC-managed translation adds on top.
//!
//! The data set is allocated *blocked* (naively), so the Zipf-hot blocks
//! all start on locality 0. A rebalancer migrates hot blocks away as the
//! run progresses — impossible under PGAS, expensive-but-possible under
//! software AGAS, cheap under network-managed AGAS.
//!
//! ```sh
//! cargo run --release --example adaptive_rebalance [localities] [ops_per_loc]
//! ```

use nmvgas::workloads::skew::{self, SkewConfig};
use nmvgas::{GasMode, Runtime};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let ops: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000);

    let cfg = SkewConfig {
        blocks: 64,
        read_bytes: 4096,
        ops_per_loc: ops,
        window: 16,
        theta: 1.05,
        rebalance_every: 512,
        moves_per_round: 4,
        ..SkewConfig::default()
    };

    println!(
        "skewed access: {n} localities, {} blocks (blocked placement), \
         Zipf θ={}, {} reads/locality of {} B",
        cfg.blocks, cfg.theta, cfg.ops_per_loc, cfg.read_bytes
    );
    println!(
        "{:<22} {:>12} {:>14} {:>12}",
        "configuration", "makespan", "reads/s", "migrations"
    );

    let run_one = |label: &str, mode: GasMode, rebalance: bool| {
        let cfg = SkewConfig {
            rebalance_every: if rebalance { cfg.rebalance_every } else { 0 },
            ..cfg
        };
        let mut rt = Runtime::builder(n, mode).boot();
        let data = skew::alloc_blocks(&mut rt, &cfg);
        let res = skew::run(&mut rt, &cfg, &data);
        println!(
            "{:<22} {:>12} {:>14.0} {:>12}",
            label,
            format!("{}", res.elapsed),
            res.ops_per_sec,
            res.migrations
        );
        res.elapsed
    };

    let pgas = run_one("PGAS (static)", GasMode::Pgas, false);
    let sw_no = run_one("AGAS-SW, no rebal.", GasMode::AgasSoftware, false);
    let sw = run_one("AGAS-SW + rebalance", GasMode::AgasSoftware, true);
    let net_no = run_one("AGAS-NET, no rebal.", GasMode::AgasNetwork, false);
    let net = run_one("AGAS-NET + rebalance", GasMode::AgasNetwork, true);

    // The same effect with the *in-runtime* balancer service (telemetry
    // from the NIC translation tables, no driver involvement at all).
    {
        let cfg = SkewConfig {
            rebalance_every: 0,
            ..cfg
        };
        let mut rt = Runtime::builder(n, GasMode::AgasNetwork).boot();
        let data = skew::alloc_blocks(&mut rt, &cfg);
        rt.start_balancer(nmvgas::parcel_rt::BalancerConfig::default());
        let res = skew::run(&mut rt, &cfg, &data);
        println!(
            "{:<22} {:>12} {:>14.0} {:>12}",
            "AGAS-NET + service",
            format!("{}", res.elapsed),
            res.ops_per_sec,
            rt.eng.state.balancer_stats.migrations
        );
    }

    println!();
    println!(
        "speedup from mobility alone (NET rebal vs PGAS): {:.2}x",
        pgas.as_secs_f64() / net.as_secs_f64()
    );
    println!(
        "cost of software translation (SW vs NET, both rebalancing): {:.2}x",
        sw.as_secs_f64() / net.as_secs_f64()
    );
    let _ = (sw_no, net_no);
}
