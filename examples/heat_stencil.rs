//! Bulk-synchronous halo exchange (the LULESH-class application proxy):
//! per-iteration time across the three GAS modes and two fabrics.
//!
//! ```sh
//! cargo run --release --example heat_stencil [px] [py] [tile] [iters]
//! ```

use nmvgas::workloads::stencil::{self, StencilConfig};
use nmvgas::{GasMode, NetConfig, Runtime, Time};

fn main() {
    let mut args = std::env::args().skip(1);
    let px: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let py: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let tile: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let iters: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    let cfg = StencilConfig {
        px,
        py,
        tile,
        iters,
        flop_time: Time::from_us(40),
    };
    let n = 16usize.min((px * py) as usize).max(2);

    println!("2-D stencil: {px}×{py} tiles of {tile}×{tile} cells, {iters} iters, {n} localities");
    println!(
        "halo traffic per iteration: {:.1} KiB",
        (cfg.tiles() * 4 * tile as u64 * 8) as f64 / 1024.0
    );

    for (fabric, net) in [
        ("ib-fdr", NetConfig::ib_fdr()),
        ("10GbE", NetConfig::ethernet_10g()),
    ] {
        println!("\nfabric: {fabric}");
        println!("{:<10} {:>14} {:>14}", "mode", "total", "per-iter");
        for mode in GasMode::ALL {
            let mut b = Runtime::builder(n, mode).net(net);
            stencil::register_actions(&mut b);
            let mut rt = b.boot();
            let tiles = stencil::alloc_tiles(&mut rt, &cfg);
            let res = stencil::run(&mut rt, &cfg, &tiles);
            println!(
                "{:<10} {:>14} {:>14}",
                mode.label(),
                format!("{}", res.elapsed),
                format!("{}", res.per_iter)
            );
        }
    }
}
