//! GUPS / RandomAccess across the three GAS modes — the paper's irregular
//! workload, as a runnable comparison.
//!
//! ```sh
//! cargo run --release --example gups [localities] [updates_per_loc]
//! ```

use nmvgas::workloads::gups::{self, GupsConfig};
use nmvgas::{GasMode, Runtime};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let updates: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2_000);

    let cfg = GupsConfig {
        cells_per_loc: 1 << 14,
        updates_per_loc: updates,
        window: 16,
        ..GupsConfig::default()
    };

    println!(
        "GUPS: {n} localities, {} cells/locality, {} updates/locality, window {}",
        cfg.cells_per_loc, cfg.updates_per_loc, cfg.window
    );
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>14} {:>12}",
        "mode", "time", "MUPS", "mean lat", "target-CPU", "retries"
    );

    for mode in GasMode::ALL {
        let mut rt = Runtime::builder(n, mode).boot();
        let table = gups::alloc_table(&mut rt, &cfg);
        let res = gups::run(&mut rt, &cfg, &table);
        let counters = rt.counters();
        let gas = rt.eng.state.total_gas_stats();
        println!(
            "{:<10} {:>12} {:>14.2} {:>12} {:>14} {:>12}",
            mode.label(),
            format!("{}", res.elapsed),
            res.gups * 1e3,
            format!("{}", res.mean_latency),
            format!("{}", counters.cpu_busy),
            gas.retries,
        );
    }

    println!();
    println!("Correctness cross-check (action variant, XOR semantics):");
    let vcfg = GupsConfig {
        cells_per_loc: 1 << 10,
        updates_per_loc: 500,
        use_actions: true,
        ..cfg
    };
    let expect = gups::expected_checksum(&vcfg, 4);
    for mode in GasMode::ALL {
        let mut b = Runtime::builder(4, mode);
        gups::register_actions(&mut b);
        let mut rt = b.boot();
        let table = gups::alloc_table(&mut rt, &vcfg);
        gups::run(&mut rt, &vcfg, &table);
        let sum = gups::table_checksum(&rt, &table);
        assert_eq!(sum, expect, "{mode:?} checksum mismatch");
        println!("  {:<10} checksum {:#018x} ✓", mode.label(), sum);
    }
}
