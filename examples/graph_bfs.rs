//! Message-driven breadth-first search over the global address space —
//! the irregular-application class the HPX-5 group built its runtime for.
//!
//! The traversal is pure message-driven dataflow: `relax` parcels chase
//! vertex labels through the GAS, termination is network quiescence, and
//! the label blocks can even migrate mid-traversal without breaking the
//! answer.
//!
//! ```sh
//! cargo run --release --example graph_bfs [vertices] [chords] [localities]
//! ```

use nmvgas::workloads::bfs::{self, BfsConfig};
use nmvgas::{GasMode, Runtime};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let mut args = std::env::args().skip(1);
    let vertices: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4096);
    let chords: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let cfg = BfsConfig {
        vertices,
        chords,
        block_class: 12,
        root: 0,
        seed: 2016,
    };

    println!(
        "BFS: {vertices} vertices, ~{} edges, {n} localities",
        bfs::Graph::small_world(vertices, chords, cfg.seed).m()
    );
    println!(
        "{:<10} {:>12} {:>14} {:>12}",
        "mode", "time", "MTEPS", "relaxations"
    );

    for mode in GasMode::ALL {
        let slot = Rc::new(RefCell::new(None));
        let mut b = Runtime::builder(n, mode);
        bfs::register_actions(&mut b, slot.clone());
        let mut rt = b.boot();
        bfs::install(&mut rt, &cfg, &slot);
        let res = bfs::run(&mut rt, &cfg, &slot);
        // Verify against the sequential oracle every run.
        let got = bfs::read_labels(&rt, &slot);
        let expect = slot.borrow().as_ref().unwrap().graph.bfs_oracle(cfg.root);
        assert_eq!(got, expect, "{mode:?}: wrong distances");
        println!(
            "{:<10} {:>12} {:>14.2} {:>12}",
            mode.label(),
            format!("{}", res.elapsed),
            res.teps / 1e6,
            res.relaxations
        );
    }

    // The showcase: migrate every label block *during* the traversal.
    println!("\nwith migration churn during the traversal (AGAS-NET):");
    let slot = Rc::new(RefCell::new(None));
    let mut b = Runtime::builder(n, GasMode::AgasNetwork);
    bfs::register_actions(&mut b, slot.clone());
    let mut rt = b.boot();
    bfs::install(&mut rt, &cfg, &slot);
    let relax = rt.eng.state.registry_lookup("bfs_relax").unwrap();
    let target = slot.borrow().as_ref().unwrap().labels.at_byte(0);
    rt.spawn(
        0,
        target,
        relax,
        nmvgas::ArgWriter::new().u32(cfg.root).u64(0).finish(),
        None,
    );
    let blocks = slot.borrow().as_ref().unwrap().labels.blocks.clone();
    for (i, gva) in blocks.iter().enumerate() {
        rt.migrate(0, *gva, ((i as u32) + 1) % n as u32);
        rt.eng.run_steps(200);
    }
    rt.run();
    let got = bfs::read_labels(&rt, &slot);
    let expect = slot.borrow().as_ref().unwrap().graph.bfs_oracle(cfg.root);
    assert_eq!(got, expect);
    println!(
        "  {} blocks migrated mid-run; distances still exact ✓ (time {})",
        blocks.len(),
        rt.now()
    );
}
