//! Protocol-timeline tracing: watch one remote memput travel the stack
//! under each GAS mode, and one stale access chase a migrated block.
//!
//! ```sh
//! cargo run --release --example trace_timeline
//! ```

use nmvgas::{Distribution, GasMode, Runtime};

fn main() {
    println!("One remote 64 B memput (locality 0 → block homed at 1):\n");
    for mode in GasMode::ALL {
        let mut rt = Runtime::builder(2, mode).boot();
        let arr = rt.alloc(2, 12, Distribution::Cyclic);
        rt.eng.state.cluster.tracer.enable(64);
        rt.memput(0, arr.block(1), vec![7u8; 64]);
        rt.run();
        println!("--- {} ---", mode.label());
        print!("{}", rt.eng.state.cluster.tracer.render());
        println!();
    }

    println!("A stale one-sided access after migration (NIC forwarding):\n");
    let mut rt = Runtime::builder(4, GasMode::AgasNetwork).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    // Warm locality 0's hint, migrate behind its back, then access again.
    rt.memput(0, arr.block(1), vec![1u8; 8]);
    rt.run();
    rt.migrate(1, arr.block(1), 3);
    rt.run();
    rt.eng.state.cluster.tracer.enable(64);
    rt.memput(0, arr.block(1).with_offset(64), vec![2u8; 8]);
    rt.run();
    print!("{}", rt.eng.state.cluster.tracer.render());
    println!("\n(the NIC at locality 1 held a forwarding tombstone: one extra hop, no NACK)");
}
